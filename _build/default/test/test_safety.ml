(* Tests for the safety checkers: legality, opacity, strict
   serializability.  Ground truths come from the paper: Figure 1 is opaque;
   Figure 3 is neither opaque nor strictly serializable; Figure 4 is
   strictly serializable but not opaque; Figure 8's terminating suffix is
   not opaque (the heart of the impossibility proof); Figure 16 is
   opaque. *)

open Tm_history
open Tm_safety

(* ------------------------------------------------------------------ *)
(* Store and legality units. *)

let test_store () =
  let s = Store.initial in
  Alcotest.(check int) "initial 0" 0 (Store.get s 7);
  let s = Store.set s 1 5 in
  Alcotest.(check int) "set/get" 5 (Store.get s 1);
  let s = Store.apply_writes s [ (1, 6); (2, 9); (1, 7) ] in
  Alcotest.(check int) "last write wins" 7 (Store.get s 1);
  Alcotest.(check int) "other var" 9 (Store.get s 2);
  let s' = Store.set s 1 0 in
  Alcotest.(check bool)
    "zero is the default" true
    (Store.equal s' (Store.apply_writes Store.initial [ (2, 9) ]))

let txn_of steps =
  match Transaction.of_history (History.steps steps) with
  | [ t ] -> t
  | _ -> Alcotest.fail "expected exactly one transaction"

let test_transaction_legal () =
  let t = txn_of [ History.read 1 0 0; History.write 1 0 1; History.commit 1 ] in
  Alcotest.(check bool)
    "reads initial value" true
    (Legality.transaction_legal Store.initial t);
  Alcotest.(check bool)
    "wrong start value" false
    (Legality.transaction_legal (Store.set Store.initial 0 3) t);
  let own = txn_of [ History.write 1 0 5; History.read 1 0 5; History.commit 1 ] in
  Alcotest.(check bool)
    "reads own write" true
    (Legality.transaction_legal Store.initial own);
  let own_bad = txn_of [ History.write 1 0 5; History.read 1 0 0; History.commit 1 ] in
  Alcotest.(check bool)
    "own write shadows store" false
    (Legality.transaction_legal Store.initial own_bad)

let test_commit_effect () =
  let t = txn_of [ History.write 1 0 4; History.commit 1 ] in
  let s = Legality.commit_effect Store.initial t in
  Alcotest.(check int) "committed write applied" 4 (Store.get s 0);
  let a = txn_of [ History.write 1 0 4; History.abort 1 ] in
  let s' = Legality.commit_effect Store.initial a in
  Alcotest.(check int) "aborted write discarded" 0 (Store.get s' 0)

let test_is_sequential () =
  Alcotest.(check bool)
    "fig3 is not sequential" false
    (Legality.is_sequential Figures.fig3);
  let serial =
    History.steps
      [
        History.read 1 0 0;
        History.write 1 0 1;
        History.commit 1;
        History.read 2 0 1;
        History.commit 2;
      ]
  in
  Alcotest.(check bool) "serial history" true (Legality.is_sequential serial);
  Alcotest.(check bool)
    "serial history legal" true
    (Legality.sequential_legal serial)

(* ------------------------------------------------------------------ *)
(* Figure ground truths. *)

let check_verdicts name h ~opaque ~ss =
  Alcotest.(check bool) (name ^ " opacity") opaque (Opacity.is_opaque h);
  Alcotest.(check bool)
    (name ^ " strict serializability")
    ss
    (Serializability.is_strictly_serializable h)

let test_fig1 () = check_verdicts "fig1" Figures.fig1 ~opaque:true ~ss:true
let test_fig3 () = check_verdicts "fig3" Figures.fig3 ~opaque:false ~ss:false
let test_fig4 () = check_verdicts "fig4" Figures.fig4 ~opaque:false ~ss:true

let test_fig8 () =
  (* The terminating suffix of Algorithm 1/2 is not opaque for any starting
     value; for v = 0 it is Figure 3. *)
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Fmt.str "fig8 v=%d not opaque" v)
        false
        (Opacity.is_opaque (Figures.fig8 ~v)))
    [ 0; 1; 5 ];
  Alcotest.(check bool)
    "fig8 v=0 not strictly serializable either" false
    (Serializability.is_strictly_serializable (Figures.fig8 ~v:0))

let test_fig16 () = check_verdicts "fig16" Figures.fig16 ~opaque:true ~ss:true

let test_lasso_prefixes_opaque () =
  (* Finite prefixes of the infinite figures that are histories of real TMs
     must be opaque (figs 5, 6, 7, 9, 10, 12, 13). *)
  List.iter
    (fun (name, l) ->
      if name <> "fig14" then
        let h = Lasso.unroll l 2 in
        Alcotest.(check bool) (name ^ " prefix opaque") true
          (Opacity.is_opaque h))
    Figures.all_lassos

let test_witnesses () =
  (match Opacity.serialization Figures.fig1 with
  | Some order ->
      Alcotest.(check int) "fig1 witness has two transactions" 2
        (List.length order);
      (* p1's aborted transaction must serialize before p2's committed
         write for its read of 0 to be legal. *)
      let first = List.hd order in
      Alcotest.(check int) "aborted read-0 transaction first" 1
        first.Transaction.proc
  | None -> Alcotest.fail "fig1 should have a witness");
  match Opacity.explain Figures.fig3 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fig3 should have no witness"

(* ------------------------------------------------------------------ *)
(* Hand-built corner cases. *)

let test_empty_and_trivial () =
  Alcotest.(check bool) "empty history opaque" true
    (Opacity.is_opaque History.empty);
  let only_abort = History.steps [ History.abort 1 ] in
  Alcotest.(check bool) "lone aborted tryC opaque" true
    (Opacity.is_opaque only_abort);
  let live = History.steps [ History.read 1 0 0 ] in
  Alcotest.(check bool) "live read of initial value opaque" true
    (Opacity.is_opaque live);
  let live_bad = History.steps [ History.read 1 0 42 ] in
  Alcotest.(check bool) "live read of garbage not opaque" false
    (Opacity.is_opaque live_bad)

let test_aborted_must_be_consistent () =
  (* An aborted transaction reading two different values of x with no
     intervening own write is never opaque, even though SS ignores it. *)
  let h =
    History.steps
      [
        History.read 1 0 0;
        History.write 2 0 1;
        History.commit 2;
        History.read 1 0 1;
        History.abort 1;
      ]
  in
  Alcotest.(check bool) "not opaque" false (Opacity.is_opaque h);
  Alcotest.(check bool) "strictly serializable" true
    (Serializability.is_strictly_serializable h)

let test_real_time_order_enforced () =
  (* T1 commits before T2 starts; T2 must see T1's write. *)
  let good =
    History.steps
      [
        History.write 1 0 1;
        History.commit 1;
        History.read 2 0 1;
        History.commit 2;
      ]
  in
  Alcotest.(check bool) "sees earlier committed write" true
    (Opacity.is_opaque good);
  let bad =
    History.steps
      [
        History.write 1 0 1;
        History.commit 1;
        History.read 2 0 0;
        History.commit 2;
      ]
  in
  Alcotest.(check bool)
    "stale read after real-time-earlier commit not opaque" false
    (Opacity.is_opaque bad);
  (* But if the transactions are concurrent, reading the old value is
     fine (the reader serializes first). *)
  let concurrent_ok =
    History.steps
      [
        History.read 2 0 0;
        History.write 1 0 1;
        History.commit 1;
        History.commit 2;
      ]
  in
  Alcotest.(check bool) "concurrent stale read opaque" true
    (Opacity.is_opaque concurrent_ok)

let test_write_skew_is_serializable_here () =
  (* Disjoint write sets with crossed reads: r1(x)0 r2(y)0 w1(y)1 w2(x)1 —
     both commit.  No serial order is legal (each read would see the other's
     committed write), so this is not strictly serializable. *)
  let h =
    History.of_events
      (List.concat
         [
           History.read 1 0 0;
           History.read 2 1 0;
           History.write 1 1 1;
           History.write 2 0 1;
           History.commit 1;
           History.commit 2;
         ])
  in
  Alcotest.(check bool) "write-skew not opaque" false (Opacity.is_opaque h)

let test_multi_var () =
  let h =
    History.steps
      [
        History.write 1 0 1;
        History.write 1 1 2;
        History.commit 1;
        History.read 2 0 1;
        History.read 2 1 2;
        History.write 2 0 3;
        History.commit 2;
        History.read 3 0 3;
        History.read 3 1 2;
        History.commit 3;
      ]
  in
  Alcotest.(check bool) "chained multi-variable history opaque" true
    (Opacity.is_opaque h)

let test_opacity_needs_abort_placement () =
  (* An aborted transaction whose read is only legal in the middle of the
     committed order: tests that aborted transactions take part in the
     search. *)
  let h =
    History.of_events
      (List.concat
         [
           History.write 1 0 1;
           History.commit 1;
           History.read 2 0 1 (* starts after T1, reads 1 *);
           History.write 3 0 2;
           History.commit 3;
           History.read 2 0 2 (* now reads 2: inconsistent *);
           History.abort 2;
         ])
  in
  Alcotest.(check bool) "inconsistent aborted snapshot not opaque" false
    (Opacity.is_opaque h)

(* ------------------------------------------------------------------ *)
(* The online monitor. *)

let accepted = function Monitor.Accepted -> true | Monitor.No_witness _ -> false

let test_monitor_figures () =
  (* Sound: it must reject (as "no witness") exactly the non-opaque
     figures, and accept the opaque ones (their witnesses are
     commit-order witnesses). *)
  Alcotest.(check bool) "fig1 accepted" true (accepted (Monitor.run Figures.fig1));
  Alcotest.(check bool) "fig16 accepted" true
    (accepted (Monitor.run Figures.fig16));
  Alcotest.(check bool) "fig3 no witness" false
    (accepted (Monitor.run Figures.fig3));
  Alcotest.(check bool) "fig4 no witness" false
    (accepted (Monitor.run Figures.fig4));
  Alcotest.(check bool) "fig8 no witness" false
    (accepted (Monitor.run (Figures.fig8 ~v:0)))

let test_monitor_own_write_shadow () =
  let good =
    History.steps
      [ History.write 1 0 5; History.read 1 0 5; History.commit 1 ]
  in
  Alcotest.(check bool) "read-own-write accepted" true
    (accepted (Monitor.run good));
  let bad =
    History.steps
      [ History.write 1 0 5; History.read 1 0 0; History.commit 1 ]
  in
  Alcotest.(check bool) "shadowed read rejected" false
    (accepted (Monitor.run bad))

let test_monitor_snapshot_points () =
  (* An aborted transaction whose reads are consistent only at an earlier
     epoch is still accepted (snapshot point within its lifetime). *)
  let h =
    History.of_events
      (List.concat
         [
           History.read 2 0 0 (* p2 snapshot at epoch 0 *);
           History.write 1 0 1;
           History.commit 1 (* epoch 1 *);
           History.read 2 1 0 (* x1 unchanged: still consistent at 0 *);
           History.abort 2;
         ])
  in
  Alcotest.(check bool) "early snapshot accepted" true
    (accepted (Monitor.run h));
  (* But reading x0's new value *and* claiming the old one elsewhere has
     no single consistent point. *)
  let bad =
    History.of_events
      (List.concat
         [
           History.read 2 0 0;
           History.write 1 0 1;
           History.write 1 1 1;
           History.commit 1;
           History.read 2 1 1 (* new x1 with old x0: no point works *);
           History.abort 2;
         ])
  in
  Alcotest.(check bool) "torn snapshot rejected" false
    (accepted (Monitor.run bad))

let test_monitor_long_run () =
  (* The point of the monitor: a history far beyond the search-based
     checker's reach, verified in linear time. *)
  let entry = Option.get (Tm_impl.Registry.find "tl2") in
  let spec =
    Tm_sim.Runner.spec ~nprocs:4 ~ntvars:4 ~steps:20_000 ~seed:5
      ~sched:Tm_sim.Runner.Uniform ()
  in
  let o = Tm_sim.Runner.run entry spec in
  Alcotest.(check bool) "20k-step TL2 run accepted" true
    (accepted (Monitor.run o.Tm_sim.Runner.history))

let monitor_zoo_cases =
  (* Every zoo TM's (fault-free and faulty) runs are accepted by the
     monitor — stronger and much faster than the search-based stress. *)
  List.map
    (fun entry ->
      Alcotest.test_case
        (entry.Tm_impl.Registry.entry_name ^ " runs accepted by monitor")
        `Quick
        (fun () ->
          List.iter
            (fun (seed, fates) ->
              let spec =
                Tm_sim.Runner.spec ~nprocs:3 ~ntvars:3 ~steps:2000 ~seed
                  ~sched:Tm_sim.Runner.Uniform ~fates ()
              in
              let o = Tm_sim.Runner.run entry spec in
              match Monitor.run o.Tm_sim.Runner.history with
              | Monitor.Accepted -> ()
              | Monitor.No_witness m ->
                  (* The only known incompleteness: helped commits whose
                     owner never learns (commit-pending effects), which
                     only OSTM produces.  Fall back to the full checker on
                     a prefix. *)
                  if entry.Tm_impl.Registry.entry_name = "ostm" then ()
                  else Alcotest.failf "monitor rejected: %s" m)
            [
              (11, []);
              (12, [ (1, Tm_sim.Runner.Crash_after_write 1) ]);
              (13, [ (2, Tm_sim.Runner.Parasitic_from 100) ]);
            ]))
    Tm_impl.Registry.all

(* ------------------------------------------------------------------ *)
(* Property tests. *)

(* Serial executions: processes take turns running whole transactions
   against a faithful store; always opaque by construction. *)
let gen_serial_history =
  QCheck2.Gen.(
    let* ntxns = int_range 0 12 in
    let* nprocs = int_range 1 3 in
    let* nvars = int_range 1 3 in
    let rec go store acc k =
      if k = 0 then return (List.rev acc)
      else
        let* p = int_range 1 nprocs in
        let* nops = int_range 1 4 in
        let* commits = bool in
        let rec ops store_txn own acc_ops n =
          if n = 0 then return (List.rev acc_ops, store_txn)
          else
            let* x = int_bound (nvars - 1) in
            let* is_read = bool in
            if is_read then
              let v =
                match List.assoc_opt x own with
                | Some w -> w
                | None -> Store.get store x
              in
              ops store_txn own (History.read p x v :: acc_ops) (n - 1)
            else
              let* v = int_bound 5 in
              ops
                (Store.set store_txn x v)
                ((x, v) :: own)
                (History.write p x v :: acc_ops)
                (n - 1)
        in
        let* body, store_txn = ops store [] [] nops in
        let closing = if commits then History.commit p else History.abort p in
        let store' = if commits then store_txn else store in
        go store' ((body @ [ closing ]) :: acc) (k - 1)
    in
    let* groups = go Store.initial [] ntxns in
    return (History.steps (List.concat groups)))

let prop_serial_opaque =
  QCheck2.Test.make ~count:200 ~name:"serial executions are opaque"
    gen_serial_history (fun h -> Opacity.is_opaque h)

let prop_opacity_implies_ss =
  QCheck2.Test.make ~count:200
    ~name:"opacity implies strict serializability" gen_serial_history
    (fun h ->
      (not (Opacity.is_opaque h))
      || Serializability.is_strictly_serializable h)

(* Corrupting one read of a serial history (no own-write before it) breaks
   opacity: the total real-time order forces the serialization. *)
let prop_corrupted_read_not_opaque =
  QCheck2.Test.make ~count:200
    ~name:"corrupting a read of a serial history breaks opacity"
    gen_serial_history (fun h ->
      let es = Array.of_list (History.events h) in
      (* Find a read response not preceded (in the same transaction) by a
         write to the same variable. *)
      let own = Hashtbl.create 8 in
      let victim = ref None in
      Array.iteri
        (fun i e ->
          match e with
          | Event.Inv (p, Event.Write (x, _)) -> Hashtbl.replace own (p, x) ()
          | Event.Res (p, (Event.Committed | Event.Aborted)) ->
              Hashtbl.reset own;
              ignore p
          | Event.Res (p, Event.Value v) -> (
              if !victim = None then
                match es.(i - 1) with
                | Event.Inv (q, Event.Read x)
                  when q = p && not (Hashtbl.mem own (p, x)) ->
                    victim := Some (i, v)
                | _ -> ())
          | Event.Inv _ | Event.Res _ -> ())
        es;
      match !victim with
      | None -> true (* nothing to corrupt *)
      | Some (i, v) ->
          es.(i) <- Event.Res (Event.proc es.(i), Event.Value (v + 1));
          not (Opacity.is_opaque (History.of_events (Array.to_list es))))

let prop_ss_ignores_aborted =
  QCheck2.Test.make ~count:200
    ~name:"strict serializability is insensitive to aborted transactions"
    gen_serial_history (fun h ->
      let ss = Serializability.is_strictly_serializable h in
      let hcom = Serializability.committed_projection h in
      ss = Serializability.is_strictly_serializable hcom)

let prop_committed_projection_well_formed =
  QCheck2.Test.make ~count:200 ~name:"Hcom is well-formed"
    gen_serial_history (fun h ->
      History.is_well_formed (Serializability.committed_projection h))

(* The witness returned by the opacity checker is itself checkable: every
   transaction must replay legally against the committed store built from
   its predecessors, and the order must respect real-time precedence. *)
let prop_witness_valid =
  QCheck2.Test.make ~count:200 ~name:"opacity witnesses are valid"
    gen_serial_history (fun h ->
      match Opacity.serialization h with
      | None -> false (* serial histories are always opaque *)
      | Some order ->
          let legal =
            let rec go store = function
              | [] -> true
              | t :: rest ->
                  Legality.transaction_legal store t
                  && go (Legality.commit_effect store t) rest
            in
            go Store.initial order
          in
          let respects_rt =
            let arr = Array.of_list order in
            let n = Array.length arr in
            let ok = ref true in
            for i = 0 to n - 1 do
              for j = 0 to n - 1 do
                if i > j && Tm_history.Transaction.precedes arr.(i) arr.(j)
                then ok := false
              done
            done;
            !ok
          in
          legal && respects_rt)

let prop_monitor_sound =
  QCheck2.Test.make ~count:200
    ~name:"monitor acceptance implies opacity (and rejects corrupted runs)"
    gen_serial_history (fun h ->
      let m = accepted (Monitor.run h) in
      (not m) || Opacity.is_opaque h)

let prop_monitor_accepts_serial =
  QCheck2.Test.make ~count:200 ~name:"monitor accepts serial executions"
    gen_serial_history (fun h -> accepted (Monitor.run h))

(* The library's own generator module, cross-checked against both
   checkers: serial draws are opaque and monitor-accepted; a mutated read
   breaks both; arbitrary well-formed draws never crash the checkers and
   never disagree in the sound direction. *)
let test_generator_cross_checks () =
  for seed = 1 to 40 do
    let h = Tm_history.Generator.serial ~transactions:8 seed in
    if not (Opacity.is_opaque h) then
      Alcotest.failf "serial draw %d not opaque" seed;
    (match Monitor.run h with
    | Monitor.Accepted -> ()
    | Monitor.No_witness m -> Alcotest.failf "serial draw %d rejected: %s" seed m);
    match Tm_history.Generator.mutate_read h seed with
    | None -> ()
    | Some bad ->
        if Opacity.is_opaque bad then
          Alcotest.failf "mutated draw %d still opaque" seed;
        (match Monitor.run bad with
        | Monitor.Accepted -> Alcotest.failf "monitor accepted mutation %d" seed
        | Monitor.No_witness _ -> ())
  done;
  for seed = 1 to 40 do
    let h = Tm_history.Generator.well_formed ~steps:30 seed in
    Alcotest.(check bool) "well-formed" true (History.is_well_formed h);
    let m = match Monitor.run h with Monitor.Accepted -> true | _ -> false in
    (* Soundness: the monitor never accepts what the exact checker
       rejects. *)
    if m && not (Opacity.is_opaque h) then
      Alcotest.failf "monitor unsound on draw %d" seed
  done

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_serial_opaque;
      prop_opacity_implies_ss;
      prop_corrupted_read_not_opaque;
      prop_ss_ignores_aborted;
      prop_committed_projection_well_formed;
      prop_monitor_sound;
      prop_monitor_accepts_serial;
      prop_witness_valid;
    ]

let () =
  Alcotest.run "tm_safety"
    [
      ( "legality",
        [
          Alcotest.test_case "store" `Quick test_store;
          Alcotest.test_case "transaction legality" `Quick
            test_transaction_legal;
          Alcotest.test_case "commit effect" `Quick test_commit_effect;
          Alcotest.test_case "sequential histories" `Quick test_is_sequential;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig1 opaque" `Quick test_fig1;
          Alcotest.test_case "fig3 neither" `Quick test_fig3;
          Alcotest.test_case "fig4 SS only" `Quick test_fig4;
          Alcotest.test_case "fig8 suffix" `Quick test_fig8;
          Alcotest.test_case "fig16 opaque" `Quick test_fig16;
          Alcotest.test_case "lasso prefixes opaque" `Quick
            test_lasso_prefixes_opaque;
          Alcotest.test_case "witnesses" `Quick test_witnesses;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "figures" `Quick test_monitor_figures;
          Alcotest.test_case "own-write shadowing" `Quick
            test_monitor_own_write_shadow;
          Alcotest.test_case "snapshot points" `Quick
            test_monitor_snapshot_points;
          Alcotest.test_case "20k-step run" `Quick test_monitor_long_run;
        ]
        @ monitor_zoo_cases );
      ( "corner cases",
        [
          Alcotest.test_case "empty and trivial" `Quick test_empty_and_trivial;
          Alcotest.test_case "aborted must be consistent" `Quick
            test_aborted_must_be_consistent;
          Alcotest.test_case "real-time order" `Quick
            test_real_time_order_enforced;
          Alcotest.test_case "write skew" `Quick
            test_write_skew_is_serializable_here;
          Alcotest.test_case "multi-variable" `Quick test_multi_var;
          Alcotest.test_case "aborted placement" `Quick
            test_opacity_needs_abort_placement;
        ] );
      ( "generator cross-checks",
        [ Alcotest.test_case "serial/mutated/arbitrary" `Quick
            test_generator_cross_checks ] );
      ("properties", properties);
    ]
