(** Bounded state-space exploration of a (replayable) system.

    The TM implementations in the zoo are mutable, so the explorer works by
    {e replay}: a reachable state is identified by the action sequence that
    leads to it, and expanding a node re-executes that sequence on a fresh
    system.  This costs O(depth) per expansion, which is irrelevant at the
    sizes we explore (Figure 15's automaton has 10 states), and keeps the
    implementations free of any cloning obligation.

    Exploration is breadth-first and deduplicates on a user-supplied
    observable snapshot, so it terminates whenever the snapshot space is
    finite (even if the underlying state has unobserved components, as long
    as they do not affect future observable behaviour). *)

type ('state, 'action) t = {
  states : ('state * 'action list) list;
      (** each reachable snapshot with a shortest witness action sequence,
          in BFS discovery order *)
  transitions : ('state * 'action * 'state) list;
  complete : bool;  (** false when [max_states] stopped the exploration *)
}

val reachable :
  make:(unit -> 'i) ->
  snapshot:('i -> 'state) ->
  actions:('i -> 'action list) ->
  apply:('i -> 'action -> unit) ->
  ?max_states:int ->
  unit ->
  ('state, 'action) t
(** [reachable ~make ~snapshot ~actions ~apply ()] explores from
    [snapshot (make ())].  [actions] lists the enabled actions in the
    current state; [apply] executes one.  Default [max_states] is 10_000.
    Snapshots are compared with structural equality. *)

val check_invariant :
  ('state, 'action) t -> ('state -> bool) -> ('state * 'action list) option
(** The first reachable state violating the invariant, with its witness. *)

val to_dot :
  state_label:('state -> string) ->
  action_label:('action -> string) ->
  ('state, 'action) t ->
  string
(** A Graphviz rendering of the reachable transition graph; states are
    named s1, s2, ... in discovery order (so the Figure-15 exploration
    reproduces the paper's own diagram). *)
