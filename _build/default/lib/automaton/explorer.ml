type ('state, 'action) t = {
  states : ('state * 'action list) list;
  transitions : ('state * 'action * 'state) list;
  complete : bool;
}

let reachable ~make ~snapshot ~actions ~apply ?(max_states = 10_000) () =
  let visited = Hashtbl.create 64 in
  let states = ref [] in
  let transitions = ref [] in
  let complete = ref true in
  let queue = Queue.create () in
  let replay path =
    let sys = make () in
    List.iter (apply sys) path;
    sys
  in
  let register state path =
    if Hashtbl.mem visited state then false
    else if Hashtbl.length visited >= max_states then begin
      complete := false;
      false
    end
    else begin
      Hashtbl.add visited state ();
      states := (state, path) :: !states;
      Queue.add (state, path) queue;
      true
    end
  in
  let sys0 = make () in
  let s0 = snapshot sys0 in
  ignore (register s0 []);
  while not (Queue.is_empty queue) do
    let state, path = Queue.take queue in
    let sys = replay path in
    let enabled = actions sys in
    List.iter
      (fun a ->
        let sys' = replay path in
        apply sys' a;
        let s' = snapshot sys' in
        transitions := (state, a, s') :: !transitions;
        ignore (register s' (path @ [ a ])))
      enabled
  done;
  {
    states = List.rev !states;
    transitions = List.rev !transitions;
    complete = !complete;
  }

let check_invariant t inv =
  List.find_opt (fun (s, _) -> not (inv s)) t.states

let to_dot ~state_label ~action_label t =
  let buf = Buffer.create 1024 in
  let name_of =
    let table = Hashtbl.create 16 in
    List.iteri (fun i (s, _) -> Hashtbl.replace table s ("s" ^ string_of_int (i + 1))) t.states;
    fun s -> try Hashtbl.find table s with Not_found -> "?"
  in
  Buffer.add_string buf "digraph automaton {\n  rankdir=LR;\n";
  List.iter
    (fun (s, _) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s [label=%S];\n" (name_of s) (state_label s)))
    t.states;
  List.iter
    (fun (s, a, s') ->
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s [label=%S];\n" (name_of s) (name_of s')
           (action_label a)))
    t.transitions;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
