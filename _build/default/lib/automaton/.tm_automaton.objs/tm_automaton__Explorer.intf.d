lib/automaton/explorer.mli:
