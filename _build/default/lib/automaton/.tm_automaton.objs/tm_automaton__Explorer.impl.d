lib/automaton/explorer.ml: Buffer Hashtbl List Printf Queue
