open Tm_history

type commit_phase =
  | Idle
  | Acquiring of Event.tvar list  (** write-set vars still to lock *)
  | Validating of int * (Event.tvar * int) list
      (** write version, read-set entries still to validate *)
  | Writing_back of int * (Event.tvar * Event.value) list

type txn = {
  mutable started : bool;
  mutable rv : int;  (** read version: clock at transaction start *)
  mutable reads : (Event.tvar * int) list;  (** var, version when read *)
  mutable writes : (Event.tvar * Event.value) list;  (** latest first *)
  mutable phase : commit_phase;
}

type t = {
  cfg : Tm_intf.config;
  mail : Tm_intf.Mailbox.t;
  mutable clock : int;
  value : int array;
  version : int array;
  lock : Event.proc option array;  (** commit-time write locks *)
  txns : txn array;
}

let name = "tl2"

let describe =
  "TL2-style: deferred updates, commit-time locking, global version clock \
   (solo progress in crash-free systems)"

let fresh_txn () =
  { started = false; rv = 0; reads = []; writes = []; phase = Idle }

let create cfg =
  {
    cfg;
    mail = Tm_intf.Mailbox.create cfg;
    clock = 0;
    value = Array.make cfg.ntvars 0;
    version = Array.make cfg.ntvars 0;
    lock = Array.make cfg.ntvars None;
    txns = Array.init (cfg.nprocs + 1) (fun _ -> fresh_txn ());
  }

let invoke t p inv =
  Tm_intf.Mailbox.check_range t.cfg p inv;
  Tm_intf.Mailbox.put t.mail p inv

let begin_if_needed t p =
  let txn = t.txns.(p) in
  if not txn.started then begin
    txn.started <- true;
    txn.rv <- t.clock;
    txn.reads <- [];
    txn.writes <- [];
    txn.phase <- Idle
  end

let locked_by_other t p x =
  match t.lock.(x) with Some q -> q <> p | None -> false

let release_acquired t p =
  Array.iteri
    (fun x owner -> if owner = Some p then t.lock.(x) <- None)
    t.lock

let abort t p =
  release_acquired t p;
  t.txns.(p) <- fresh_txn ();
  Event.Aborted

let commit t p =
  t.txns.(p) <- fresh_txn ();
  Event.Committed

(* The write set in canonical (ascending) order, one entry per variable,
   with the transaction's final value for it. *)
let write_set txn =
  List.sort_uniq Int.compare (List.map fst txn.writes)
  |> List.map (fun x -> (x, List.assoc x txn.writes))

let read_value t p x =
  let txn = t.txns.(p) in
  match List.assoc_opt x txn.writes with
  | Some v -> Some (Event.Value v)
  | None ->
      if locked_by_other t p x || t.version.(x) > txn.rv then None
      else begin
        txn.reads <- (x, t.version.(x)) :: txn.reads;
        Some (Event.Value t.value.(x))
      end

(* One micro-step of the commit state machine. *)
let commit_step t p =
  let txn = t.txns.(p) in
  match txn.phase with
  | Idle -> (
      match write_set txn with
      | [] ->
          (* Read-only transactions need no locks and no re-validation:
             every read was validated against rv when it happened. *)
          Some (commit t p)
      | ws ->
          txn.phase <- Acquiring (List.map fst ws);
          None)
  | Acquiring [] ->
      t.clock <- t.clock + 1;
      txn.phase <- Validating (t.clock, txn.reads);
      None
  | Acquiring (x :: rest) ->
      if locked_by_other t p x then Some (abort t p)
      else begin
        t.lock.(x) <- Some p;
        txn.phase <- Acquiring rest;
        None
      end
  | Validating (wv, []) ->
      txn.phase <- Writing_back (wv, write_set txn);
      None
  | Validating (wv, (x, _ver) :: rest) ->
      if locked_by_other t p x || t.version.(x) > txn.rv then
        Some (abort t p)
      else begin
        txn.phase <- Validating (wv, rest);
        None
      end
  | Writing_back (_, []) ->
      release_acquired t p;
      Some (commit t p)
  | Writing_back (wv, (x, v) :: rest) ->
      t.value.(x) <- v;
      t.version.(x) <- wv;
      t.lock.(x) <- None;
      txn.phase <- Writing_back (wv, rest);
      None

let poll t p =
  match Tm_intf.Mailbox.get t.mail p with
  | None -> None
  | Some inv ->
      begin_if_needed t p;
      let resp =
        match inv with
        | Event.Read x -> (
            match read_value t p x with
            | Some r -> Some r
            | None -> Some (abort t p))
        | Event.Write (x, v) ->
            let txn = t.txns.(p) in
            txn.writes <- (x, v) :: txn.writes;
            Some Event.Ok_written
        | Event.Try_commit -> commit_step t p
      in
      (match resp with
      | Some _ -> Tm_intf.Mailbox.clear t.mail p
      | None -> ());
      resp

let pending t p = Tm_intf.Mailbox.get t.mail p
