(** A multiversion TM: reads never abort.

    Every commit installs a new version of the written t-variables; a read
    returns the newest version no newer than the transaction's snapshot, so
    reads — and therefore read-only transactions — always succeed.  Update
    transactions validate at commit time (first-committer-wins, TL2-style
    commit locking), so the Theorem-1 adversary still starves its victim:
    multiversioning buys read-only progress, not local progress, exactly
    as the impossibility result demands.

    Progress character: solo progress in crash-free systems (commit-time
    locks, like TL2), with the bonus that parasitic or suspended {e
    readers} never disturb anyone and are never disturbed. *)

include Tm_intf.S
