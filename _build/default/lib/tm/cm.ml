open Tm_history

type decision = Steal | Wait | Abort_self

type view = {
  proc : Event.proc;
  ops_done : int;
  waits : int;
  timestamp : int;
}

type t = {
  cm_name : string;
  decide : attacker:view -> victim:view -> decision;
}

let aggressive =
  { cm_name = "aggressive"; decide = (fun ~attacker:_ ~victim:_ -> Steal) }

let polite bound =
  {
    cm_name = Fmt.str "polite-%d" bound;
    decide =
      (fun ~attacker ~victim:_ ->
        if attacker.waits >= bound then Steal else Wait);
  }

let karma =
  {
    cm_name = "karma";
    decide =
      (fun ~attacker ~victim ->
        if attacker.ops_done + attacker.waits >= victim.ops_done then Steal
        else Wait);
  }

let greedy =
  {
    cm_name = "greedy";
    decide =
      (fun ~attacker ~victim ->
        if attacker.timestamp < victim.timestamp then Steal else Abort_self);
  }

let timestamp bound =
  {
    cm_name = Fmt.str "timestamp-%d" bound;
    decide =
      (fun ~attacker ~victim ->
        if attacker.timestamp < victim.timestamp then Steal
        else if attacker.waits >= bound then Abort_self
        else Wait);
  }

let all = [ aggressive; polite 4; karma; greedy; timestamp 4 ]

let by_name n = List.find_opt (fun cm -> cm.cm_name = n) all
