open Tm_history

type txn = {
  mutable live : bool;
  mutable reads : (Event.tvar * Event.value) list;
  mutable writes : (Event.tvar * Event.value) list;  (** latest first *)
}

type t = {
  cfg : Tm_intf.config;
  mail : Tm_intf.Mailbox.t;
  store : int array;
  txns : txn array;
}

let name = "quiescent"

let describe =
  "over-conservative strawman: writers commit only when no other \
   transaction is live (opaque and responsive, but one open transaction \
   starves all writers - realizes Figures 9 and 12)"

let fresh_txn () = { live = false; reads = []; writes = [] }

let create cfg =
  {
    cfg;
    mail = Tm_intf.Mailbox.create cfg;
    store = Array.make cfg.ntvars 0;
    txns = Array.init (cfg.nprocs + 1) (fun _ -> fresh_txn ());
  }

let invoke t p inv =
  Tm_intf.Mailbox.check_range t.cfg p inv;
  Tm_intf.Mailbox.put t.mail p inv

let others_live t p =
  let live = ref false in
  Array.iteri (fun q txn -> if q <> p && q > 0 && txn.live then live := true) t.txns;
  !live

let poll t p =
  match Tm_intf.Mailbox.get t.mail p with
  | None -> None
  | Some inv ->
      let txn = t.txns.(p) in
      txn.live <- true;
      let resp =
        match inv with
        | Event.Read x -> (
            match List.assoc_opt x txn.writes with
            | Some v -> Event.Value v
            | None ->
                (* Reads return the committed value; since writers commit
                   only in quiescence, the whole read set is automatically
                   a consistent snapshot as long as this transaction lives
                   (nobody can commit while it does). *)
                let v = t.store.(x) in
                txn.reads <- (x, v) :: txn.reads;
                Event.Value v)
        | Event.Write (x, v) ->
            txn.writes <- (x, v) :: txn.writes;
            Event.Ok_written
        | Event.Try_commit ->
            if txn.writes = [] then begin
              t.txns.(p) <- fresh_txn ();
              Event.Committed
            end
            else if others_live t p then begin
              t.txns.(p) <- fresh_txn ();
              Event.Aborted
            end
            else begin
              List.iter (fun (x, v) -> t.store.(x) <- v) (List.rev txn.writes);
              t.txns.(p) <- fresh_txn ();
              Event.Committed
            end
      in
      Tm_intf.Mailbox.clear t.mail p;
      Some resp

let pending t p = Tm_intf.Mailbox.get t.mail p
