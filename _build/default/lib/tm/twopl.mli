(** A strict two-phase-locking TM with deadlock detection.

    Reads take shared locks, writes take exclusive locks at encounter time
    (with shared-to-exclusive upgrades); all locks are held until the
    transaction ends.  A conflicting operation {e waits} (the poll returns
    no response) rather than aborting.  Waiting can deadlock, so every
    blocked poll runs cycle detection on the waits-for graph and dooms the
    {e youngest} transaction on the cycle — the only source of aborts in
    this TM.

    This is the database-style design point of the zoo: fault-free it
    combines very low abort rates with mutual blocking; under faults it is
    as fragile as the paper's global lock — a crashed or parasitic process
    holding any lock blocks every conflicting process forever (the
    deadlock detector cannot help: a crashed process is not {e waiting}
    for anything, so there is no cycle to break).

    Progress character: solo progress only in crash-free and parasitic-free
    systems; not responsive. *)

include Tm_intf.S
