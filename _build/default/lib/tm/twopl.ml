open Tm_history

type txn = {
  mutable started : bool;
  mutable doomed : bool;
  mutable timestamp : int;  (** birth date; larger = younger *)
  mutable writes : (Event.tvar * Event.value) list;  (** latest first *)
}

type t = {
  cfg : Tm_intf.config;
  mail : Tm_intf.Mailbox.t;
  mutable time : int;
  value : int array;
  readers : bool array array;  (** readers.(x).(p) *)
  writer : Event.proc option array;
  txns : txn array;
}

let name = "twopl"

let describe =
  "strict two-phase locking with waits-for deadlock detection (solo \
   progress only in crash-free and parasitic-free systems; blocking)"

let fresh_txn () = { started = false; doomed = false; timestamp = 0; writes = [] }

let create cfg =
  {
    cfg;
    mail = Tm_intf.Mailbox.create cfg;
    time = 0;
    value = Array.make cfg.ntvars 0;
    readers = Array.init cfg.ntvars (fun _ -> Array.make (cfg.nprocs + 1) false);
    writer = Array.make cfg.ntvars None;
    txns = Array.init (cfg.nprocs + 1) (fun _ -> fresh_txn ());
  }

let invoke t p inv =
  Tm_intf.Mailbox.check_range t.cfg p inv;
  Tm_intf.Mailbox.put t.mail p inv

let begin_if_needed t p =
  let txn = t.txns.(p) in
  if not txn.started then begin
    t.time <- t.time + 1;
    txn.started <- true;
    txn.doomed <- false;
    txn.timestamp <- t.time;
    txn.writes <- []
  end

let release_locks t p =
  Array.iter (fun row -> row.(p) <- false) t.readers;
  Array.iteri (fun x w -> if w = Some p then t.writer.(x) <- None) t.writer

let deliver_abort t p =
  release_locks t p;
  t.txns.(p) <- fresh_txn ();
  Event.Aborted

(* The processes whose locks prevent p's pending operation from
   proceeding. *)
let blockers t p =
  match Tm_intf.Mailbox.get t.mail p with
  | None | Some Event.Try_commit -> []
  | Some (Event.Read x) -> (
      match t.writer.(x) with Some q when q <> p -> [ q ] | _ -> [])
  | Some (Event.Write (x, _)) ->
      let ws = match t.writer.(x) with Some q when q <> p -> [ q ] | _ -> [] in
      let rs =
        List.filter
          (fun q -> q <> p && t.readers.(x).(q))
          (List.init t.cfg.nprocs (fun i -> i + 1))
      in
      ws @ rs

(* Detect a waits-for cycle through p; if found, doom the youngest
   transaction on it.  Blocked processes wait for lock holders; a holder
   that is itself blocked extends the chain. *)
let break_deadlock t p =
  let rec chase visited q =
    if List.mem q visited then Some (q :: visited)
    else
      match blockers t q with
      | [] -> None
      | qs ->
          (* Follow each blocker; the graph is small, DFS suffices. *)
          List.fold_left
            (fun acc q' ->
              match acc with Some _ -> acc | None -> chase (q :: visited) q')
            None qs
  in
  match chase [] p with
  | None -> ()
  | Some cycle ->
      let youngest =
        List.fold_left
          (fun best q ->
            if t.txns.(q).timestamp > t.txns.(best).timestamp then q else best)
          p cycle
      in
      t.txns.(youngest).doomed <- true

let poll t p =
  match Tm_intf.Mailbox.get t.mail p with
  | None -> None
  | Some inv ->
      begin_if_needed t p;
      let txn = t.txns.(p) in
      let answer resp =
        Tm_intf.Mailbox.clear t.mail p;
        Some resp
      in
      if txn.doomed then answer (deliver_abort t p)
      else (
        match inv with
        | Event.Read x -> (
            match t.writer.(x) with
            | Some q when q <> p ->
                break_deadlock t p;
                None
            | Some _ | None ->
                t.readers.(x).(p) <- true;
                let v =
                  match List.assoc_opt x txn.writes with
                  | Some v -> v
                  | None -> t.value.(x)
                in
                answer (Event.Value v))
        | Event.Write (x, v) ->
            if blockers t p <> [] then begin
              break_deadlock t p;
              None
            end
            else begin
              t.writer.(x) <- Some p;
              t.readers.(x).(p) <- false;
              txn.writes <- (x, v) :: txn.writes;
              answer Event.Ok_written
            end
        | Event.Try_commit ->
            (* Strictness: writes apply under the exclusive locks, which
               are only now released. *)
            let vars =
              List.sort_uniq Int.compare (List.map fst txn.writes)
            in
            List.iter
              (fun x -> t.value.(x) <- List.assoc x txn.writes)
              vars;
            release_locks t p;
            t.txns.(p) <- fresh_txn ();
            answer Event.Committed)

let pending t p = Tm_intf.Mailbox.get t.mail p
