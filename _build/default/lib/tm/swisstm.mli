(** A SwissTM-style TM (Dragojević, Guerraoui, Kapałka, PLDI 2009 —
    reference [16] of the paper, co-authored by two of the paper's
    authors).

    The design point between TL2 and TinySTM: write locks are acquired
    {e eagerly} (at encounter, so write-write conflicts are detected
    early) but updates are {e lazy} (buffered until commit, so readers are
    never exposed to uncommitted values and can read write-locked
    t-variables).  Write-write conflicts are resolved by a two-phase
    contention manager: a transaction that has done little work aborts
    itself, an older one waits briefly and then dooms the lock holder.

    Progress character (Section 3.2.3, same class as TinySTM): solo
    progress only in systems that are both crash-free and parasitic-free —
    the eager write locks of a crashed or parasitic writer block
    conflicting writers forever (readers, thanks to lazy updates, keep
    going). *)

include Tm_intf.S
