open Tm_history

type txn = {
  mutable started : bool;
  mutable rv : int;
  mutable reads : (Event.tvar * int) list;
  mutable undo : (Event.tvar * Event.value * int) list;
      (** var, previous value, previous version — newest first *)
}

type t = {
  cfg : Tm_intf.config;
  mail : Tm_intf.Mailbox.t;
  mutable clock : int;
  value : int array;
  version : int array;
  lock : Event.proc option array;  (** encounter-time write locks *)
  txns : txn array;
  extension : bool;  (** timestamp extension on snapshot misses *)
}

let name = "tinystm"

let describe =
  "TinySTM-style: encounter-time locking, write-through with undo log \
   (solo progress only in crash-free and parasitic-free systems)"

(* Whether this instance attempts snapshot (timestamp) extension instead of
   aborting when it meets a too-new version.  Set per instance below. *)

let fresh_txn () = { started = false; rv = 0; reads = []; undo = [] }

let create_with ~extension cfg =
  {
    cfg;
    mail = Tm_intf.Mailbox.create cfg;
    clock = 0;
    value = Array.make cfg.ntvars 0;
    version = Array.make cfg.ntvars 0;
    lock = Array.make cfg.ntvars None;
    txns = Array.init (cfg.nprocs + 1) (fun _ -> fresh_txn ());
    extension;
  }

let create cfg = create_with ~extension:false cfg

let invoke t p inv =
  Tm_intf.Mailbox.check_range t.cfg p inv;
  Tm_intf.Mailbox.put t.mail p inv

let begin_if_needed t p =
  let txn = t.txns.(p) in
  if not txn.started then begin
    txn.started <- true;
    txn.rv <- t.clock;
    txn.reads <- [];
    txn.undo <- []
  end

let locked_by_other t p x =
  match t.lock.(x) with Some q -> q <> p | None -> false

let owns t p x = t.lock.(x) = Some p

(* Roll back in-place writes (newest first restores the oldest state last,
   which is what we want since undo is newest-first and we restore each
   variable to its pre-transaction state the last time it appears). *)
let abort t p =
  let txn = t.txns.(p) in
  List.iter
    (fun (x, v, ver) ->
      t.value.(x) <- v;
      t.version.(x) <- ver)
    (List.rev txn.undo);
  Array.iteri (fun x o -> if o = Some p then t.lock.(x) <- None) t.lock;
  t.txns.(p) <- fresh_txn ();
  Event.Aborted

(* Timestamp extension: if every recorded read still sits at the version
   it was read at (and is not locked by someone else), the snapshot can be
   moved forward to the current clock. *)
let try_extend t p =
  let txn = t.txns.(p) in
  t.extension
  && List.for_all
       (fun (x, ver) ->
         t.version.(x) = ver && not (locked_by_other t p x))
       txn.reads
  && begin
       txn.rv <- t.clock;
       true
     end

let poll t p =
  match Tm_intf.Mailbox.get t.mail p with
  | None -> None
  | Some inv ->
      begin_if_needed t p;
      let txn = t.txns.(p) in
      let resp =
        match inv with
        | Event.Read x ->
            if owns t p x then Event.Value t.value.(x)
            else if locked_by_other t p x then abort t p
            else if t.version.(x) > txn.rv && not (try_extend t p) then
              abort t p
            else begin
              txn.reads <- (x, t.version.(x)) :: txn.reads;
              Event.Value t.value.(x)
            end
        | Event.Write (x, v) ->
            if locked_by_other t p x then abort t p
            else if
              t.version.(x) > txn.rv
              && (not (owns t p x))
              && not (try_extend t p)
            then
              (* Writing over a version we could not have read keeps the
                 commit-time validation simple: abort early (or extend). *)
              abort t p
            else begin
              if not (owns t p x) then begin
                t.lock.(x) <- Some p;
                txn.undo <- (x, t.value.(x), t.version.(x)) :: txn.undo
              end;
              t.value.(x) <- v;
              Event.Ok_written
            end
        | Event.Try_commit ->
            (* Each read must still sit at the exact version it was read at
               (own locks are fine: the version was checked when the lock
               was taken).  The exact comparison is what keeps the
               timestamp-extension variant sound — with a moving snapshot,
               "version <= rv" would accept a variable that changed twice. *)
            let valid =
              List.for_all
                (fun (x, ver) ->
                  owns t p x
                  || ((not (locked_by_other t p x)) && t.version.(x) = ver))
                txn.reads
            in
            if not valid then abort t p
            else begin
              t.clock <- t.clock + 1;
              let wv = t.clock in
              Array.iteri
                (fun x o ->
                  if o = Some p then begin
                    t.version.(x) <- wv;
                    t.lock.(x) <- None
                  end)
                t.lock;
              t.txns.(p) <- fresh_txn ();
              Event.Committed
            end
      in
      Tm_intf.Mailbox.clear t.mail p;
      Some resp

let pending t p = Tm_intf.Mailbox.get t.mail p

let make ~extension : (module Tm_intf.S) =
  (module struct
    type nonrec t = t

    let name = if extension then "tinystm-ext" else "tinystm"

    let describe =
      if extension then
        "TinySTM-style with timestamp extension: encounter-time locking, \
         write-through, snapshot extension on too-new versions"
      else describe

    let create = create_with ~extension
    let invoke = invoke
    let poll = poll
    let pending = pending
  end)
