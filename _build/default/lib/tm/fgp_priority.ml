open Tm_history

type t = {
  cfg : Tm_intf.config;
  mail : Tm_intf.Mailbox.t;
  status : [ `C | `A ] array;
  cp : bool array;
  vals : int array array;
  committed : int array;
}

let name = "fgp-priority"

let describe =
  "Fgp with a priority commit guard: a process commits only when no \
   higher-priority process is in the concurrent group (local progress for \
   the top-priority process; fault-prone only below the faulty rank)"

let priority_of (p : Event.proc) = p

let create cfg =
  {
    cfg;
    mail = Tm_intf.Mailbox.create cfg;
    status = Array.make (cfg.nprocs + 1) `C;
    cp = Array.make (cfg.nprocs + 1) false;
    vals = Array.make_matrix (cfg.nprocs + 1) cfg.ntvars 0;
    committed = Array.make cfg.ntvars 0;
  }

let invoke t p inv =
  Tm_intf.Mailbox.check_range t.cfg p inv;
  Tm_intf.Mailbox.put t.mail p inv;
  t.cp.(p) <- true;
  match inv with
  | Event.Write (x, v) -> t.vals.(p).(x) <- v
  | Event.Read _ | Event.Try_commit -> ()

let deliver_abort t p =
  t.status.(p) <- `C;
  t.cp.(p) <- false;
  Array.blit t.committed 0 t.vals.(p) 0 t.cfg.ntvars;
  Event.Aborted

let deliver_commit t p =
  Array.blit t.vals.(p) 0 t.committed 0 t.cfg.ntvars;
  for k = 1 to t.cfg.nprocs do
    if t.cp.(k) && k <> p then t.status.(k) <- `A;
    Array.blit t.committed 0 t.vals.(k) 0 t.cfg.ntvars
  done;
  Array.fill t.cp 0 (Array.length t.cp) false;
  Event.Committed

let higher_priority_active t p =
  let active = ref false in
  for k = 1 to t.cfg.nprocs do
    if k <> p && t.cp.(k) && priority_of k < priority_of p then active := true
  done;
  !active

let poll t p =
  match Tm_intf.Mailbox.get t.mail p with
  | None -> None
  | Some inv ->
      let resp =
        match t.status.(p) with
        | `A -> deliver_abort t p
        | `C -> (
            match inv with
            | Event.Read x -> Event.Value t.vals.(p).(x)
            | Event.Write (_, _) -> Event.Ok_written
            | Event.Try_commit ->
                if higher_priority_active t p then deliver_abort t p
                else deliver_commit t p)
      in
      Tm_intf.Mailbox.clear t.mail p;
      Some resp

let pending t p = Tm_intf.Mailbox.get t.mail p
