open Tm_history

type txn = {
  mutable started : bool;
  mutable rv : int;
  mutable reads : (Event.tvar * int) list;  (** var, version when read *)
  mutable writes : (Event.tvar * Event.value) list;  (** latest first *)
  mutable ops_done : int;
  mutable waits : int;
  mutable doomed : bool;
}

type t = {
  cfg : Tm_intf.config;
  mail : Tm_intf.Mailbox.t;
  mutable clock : int;
  value : int array;
  version : int array;
  wlock : Event.proc option array;  (** eager write locks *)
  txns : txn array;
}

let name = "swisstm"

let describe =
  "SwissTM-style: eager write locking, lazy updates, two-phase contention \
   management (solo progress only in crash-free and parasitic-free \
   systems)"

(* The two-phase contention threshold: transactions that completed fewer
   operations than this abort themselves on a write-write conflict; bigger
   ones wait and then doom the holder. *)
let cm_threshold = 3
let cm_patience = 4

let fresh_txn () =
  {
    started = false;
    rv = 0;
    reads = [];
    writes = [];
    ops_done = 0;
    waits = 0;
    doomed = false;
  }

let create cfg =
  {
    cfg;
    mail = Tm_intf.Mailbox.create cfg;
    clock = 0;
    value = Array.make cfg.ntvars 0;
    version = Array.make cfg.ntvars 0;
    wlock = Array.make cfg.ntvars None;
    txns = Array.init (cfg.nprocs + 1) (fun _ -> fresh_txn ());
  }

let invoke t p inv =
  Tm_intf.Mailbox.check_range t.cfg p inv;
  Tm_intf.Mailbox.put t.mail p inv

let begin_if_needed t p =
  let txn = t.txns.(p) in
  if not txn.started then begin
    txn.started <- true;
    txn.rv <- t.clock
  end

let release_locks t p =
  Array.iteri (fun x o -> if o = Some p then t.wlock.(x) <- None) t.wlock

let deliver_abort t p =
  release_locks t p;
  t.txns.(p) <- fresh_txn ();
  Event.Aborted

let doom t q =
  release_locks t q;
  t.txns.(q).doomed <- true

let poll t p =
  match Tm_intf.Mailbox.get t.mail p with
  | None -> None
  | Some inv ->
      begin_if_needed t p;
      let txn = t.txns.(p) in
      let answer resp =
        Tm_intf.Mailbox.clear t.mail p;
        Some resp
      in
      if txn.doomed then answer (deliver_abort t p)
      else (
        match inv with
        | Event.Read x -> (
            (* Lazy updates: the committed value is always in place, so a
               write lock does not block readers. *)
            match List.assoc_opt x txn.writes with
            | Some v ->
                txn.ops_done <- txn.ops_done + 1;
                answer (Event.Value v)
            | None ->
                if t.version.(x) > txn.rv then answer (deliver_abort t p)
                else begin
                  txn.reads <- (x, t.version.(x)) :: txn.reads;
                  txn.ops_done <- txn.ops_done + 1;
                  answer (Event.Value t.value.(x))
                end)
        | Event.Write (x, v) -> (
            match t.wlock.(x) with
            | Some q when q <> p ->
                (* Two-phase contention management. *)
                if txn.ops_done < cm_threshold then answer (deliver_abort t p)
                else if txn.waits < cm_patience then begin
                  txn.waits <- txn.waits + 1;
                  None
                end
                else begin
                  doom t q;
                  t.wlock.(x) <- Some p;
                  txn.writes <- (x, v) :: txn.writes;
                  txn.ops_done <- txn.ops_done + 1;
                  txn.waits <- 0;
                  answer Event.Ok_written
                end
            | Some _ | None ->
                t.wlock.(x) <- Some p;
                txn.writes <- (x, v) :: txn.writes;
                txn.ops_done <- txn.ops_done + 1;
                txn.waits <- 0;
                answer Event.Ok_written)
        | Event.Try_commit ->
            (* Commit is one atomic step: a multi-poll write-back would let
               a reader whose snapshot is the new clock value observe half
               of the commit.  SwissTM's fault character lives in its
               eager encounter-time write locks, which is unaffected. *)
            let valid =
              List.for_all
                (fun (x, ver) -> t.version.(x) = ver && t.version.(x) <= txn.rv)
                txn.reads
            in
            if not valid then answer (deliver_abort t p)
            else begin
              (if txn.writes <> [] then begin
                 t.clock <- t.clock + 1;
                 let wv = t.clock in
                 let vars =
                   List.sort_uniq Int.compare (List.map fst txn.writes)
                 in
                 List.iter
                   (fun x ->
                     t.value.(x) <- List.assoc x txn.writes;
                     t.version.(x) <- wv)
                   vars
               end);
              release_locks t p;
              t.txns.(p) <- fresh_txn ();
              answer Event.Committed
            end)

let pending t p = Tm_intf.Mailbox.get t.mail p
