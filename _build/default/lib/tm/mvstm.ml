open Tm_history

type commit_phase = Idle | Acquiring of Event.tvar list

type txn = {
  mutable started : bool;
  mutable rv : int;
  mutable reads : (Event.tvar * int) list;  (** var, version that was read *)
  mutable writes : (Event.tvar * Event.value) list;  (** latest first *)
  mutable phase : commit_phase;
}

type t = {
  cfg : Tm_intf.config;
  mail : Tm_intf.Mailbox.t;
  mutable clock : int;
  versions : (int * Event.value) list array;
      (** per t-variable, newest first; always non-empty (starts at (0,0)) *)
  lock : Event.proc option array;
  txns : txn array;
}

let name = "mvstm"

let describe =
  "multiversion: reads never abort (snapshot at transaction start), \
   first-committer-wins validation for writers"

let fresh_txn () =
  { started = false; rv = 0; reads = []; writes = []; phase = Idle }

let create cfg =
  {
    cfg;
    mail = Tm_intf.Mailbox.create cfg;
    clock = 0;
    versions = Array.make cfg.ntvars [ (0, 0) ];
    lock = Array.make cfg.ntvars None;
    txns = Array.init (cfg.nprocs + 1) (fun _ -> fresh_txn ());
  }

let invoke t p inv =
  Tm_intf.Mailbox.check_range t.cfg p inv;
  Tm_intf.Mailbox.put t.mail p inv

let begin_if_needed t p =
  let txn = t.txns.(p) in
  if not txn.started then begin
    txn.started <- true;
    txn.rv <- t.clock;
    txn.reads <- [];
    txn.writes <- [];
    txn.phase <- Idle
  end

(* Newest version no newer than the snapshot: always exists because
   version 0 of everything is the initial value. *)
let read_at t x rv =
  let rec find = function
    | [] -> assert false
    | (ver, v) :: rest -> if ver <= rv then (ver, v) else find rest
  in
  find t.versions.(x)

let latest_version t x =
  match t.versions.(x) with (ver, _) :: _ -> ver | [] -> assert false

let locked_by_other t p x =
  match t.lock.(x) with Some q -> q <> p | None -> false

let release_acquired t p =
  Array.iteri (fun x o -> if o = Some p then t.lock.(x) <- None) t.lock

let abort t p =
  release_acquired t p;
  t.txns.(p) <- fresh_txn ();
  Event.Aborted

let write_set txn =
  List.sort_uniq Int.compare (List.map fst txn.writes)
  |> List.map (fun x -> (x, List.assoc x txn.writes))

let commit_step t p =
  let txn = t.txns.(p) in
  match txn.phase with
  | Idle -> (
      match write_set txn with
      | [] ->
          (* Read-only: the snapshot is consistent by construction. *)
          t.txns.(p) <- fresh_txn ();
          Some Event.Committed
      | ws ->
          txn.phase <- Acquiring (List.map fst ws);
          None)
  | Acquiring [] ->
      (* First-committer-wins: every read must still be of the latest
         version, else a concurrent commit invalidated the snapshot the
         writes were computed from.  Installation is a single atomic step:
         a multi-step install would let a reader whose snapshot is the new
         clock value observe half of this commit. *)
      let valid =
        List.for_all (fun (x, ver) -> latest_version t x = ver) txn.reads
      in
      if not valid then Some (abort t p)
      else begin
        t.clock <- t.clock + 1;
        let wv = t.clock in
        List.iter
          (fun (x, v) -> t.versions.(x) <- (wv, v) :: t.versions.(x))
          (write_set txn);
        release_acquired t p;
        t.txns.(p) <- fresh_txn ();
        Some Event.Committed
      end
  | Acquiring (x :: rest) ->
      if locked_by_other t p x then Some (abort t p)
      else begin
        t.lock.(x) <- Some p;
        txn.phase <- Acquiring rest;
        None
      end

let poll t p =
  match Tm_intf.Mailbox.get t.mail p with
  | None -> None
  | Some inv ->
      begin_if_needed t p;
      let txn = t.txns.(p) in
      let resp =
        match inv with
        | Event.Read x -> (
            match List.assoc_opt x txn.writes with
            | Some v -> Some (Event.Value v)
            | None ->
                let ver, v = read_at t x txn.rv in
                txn.reads <- (x, ver) :: txn.reads;
                Some (Event.Value v))
        | Event.Write (x, v) ->
            txn.writes <- (x, v) :: txn.writes;
            Some Event.Ok_written
        | Event.Try_commit -> commit_step t p
      in
      (match resp with
      | Some _ -> Tm_intf.Mailbox.clear t.mail p
      | None -> ());
      resp

let pending t p = Tm_intf.Mailbox.get t.mail p
