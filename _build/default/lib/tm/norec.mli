(** A NOrec-style TM: one global sequence lock plus value-based validation
    (Dalessandro, Spear, Scott, PPoPP 2010).

    Writers serialize on a single commit lock; readers never take it but
    re-validate their whole read set by value whenever the global snapshot
    counter moves.  Included in the zoo as a second lock-based design point
    with a different blocking profile from TL2/TinySTM: a process that
    crashes while holding the commit lock blocks every other process that
    still needs the store (its write-back may be half done, so reads wait
    it out), while parasitic processes never take the lock at all.

    Progress character: solo progress in crash-free systems. *)

include Tm_intf.S
