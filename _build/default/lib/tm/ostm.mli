(** An OSTM-style lock-free TM with helping (Fraser's OSTM — reference [13]
    of the paper, which the paper cites as an implementation ensuring
    opacity and global progress).

    Like TL2, updates are deferred and acquired at commit time; unlike TL2,
    the commit runs through a shared {e descriptor} that any process can
    advance.  A transaction that finds a t-variable held by an in-flight
    commit {e helps} that commit to completion instead of aborting or
    waiting, so even a process that crashes in the middle of its commit
    cannot obstruct others — the next process to touch one of its
    t-variables finishes the commit on its behalf.

    Progress character: responsive and lock-free — global progress (and
    hence solo progress) in every fault-prone system, the possibility
    result that complements the paper's Theorem 3. *)

include Tm_intf.S
