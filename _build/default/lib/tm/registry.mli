(** The TM zoo: every implementation behind the common interface, by name.

    Names: ["global-lock"], ["fgp"], ["tl2"], ["tinystm"], ["swisstm"],
    ["dstm-aggressive"], ["dstm-polite-4"], ["dstm-karma"],
    ["dstm-greedy"], ["ostm"], ["norec"], ["mvstm"], ["quiescent"],
    ["twopl"], ["fgp-priority"]. *)

type entry = {
  entry_name : string;
  entry_describe : string;
  impl : (module Tm_intf.S);
  responsive : bool;
      (** answers every invocation within a bounded number of polls (never
          blocks); blocking TMs escape the Theorem-1 adversary by
          withholding responses instead of aborting *)
}

val all : entry list
val responsive : entry list
val find : string -> entry option
val names : string list

val instance : entry -> Tm_intf.config -> Tm_intf.instance
(** Create a fresh packed instance of the entry. *)
