open Tm_history

type t = {
  cfg : Tm_intf.config;
  mail : Tm_intf.Mailbox.t;
  status : [ `C | `A ] array;  (** Status.(k) for k in 1..nprocs *)
  cp : bool array;  (** CP membership *)
  vals : int array array;  (** Val.(k).(j): pk's view of xj *)
  committed : int array;  (** last committed snapshot, for abort delivery *)
}

let name = "fgp"

let describe =
  "the paper's Section-6 automaton: first committer of each concurrent \
   group wins, everyone else in the group aborts (opacity + global \
   progress in any fault-prone system)"

let create cfg =
  {
    cfg;
    mail = Tm_intf.Mailbox.create cfg;
    status = Array.make (cfg.nprocs + 1) `C;
    cp = Array.make (cfg.nprocs + 1) false;
    vals = Array.make_matrix (cfg.nprocs + 1) cfg.ntvars 0;
    committed = Array.make cfg.ntvars 0;
  }

(* Invocations enter the mailbox and add their process to CP; a write also
   updates the process's view immediately, exactly as in the paper's
   transition rules. *)
let invoke t p inv =
  Tm_intf.Mailbox.check_range t.cfg p inv;
  Tm_intf.Mailbox.put t.mail p inv;
  t.cp.(p) <- true;
  match inv with
  | Event.Write (x, v) -> t.vals.(p).(x) <- v
  | Event.Read _ | Event.Try_commit -> ()

let deliver_abort t p =
  t.status.(p) <- `C;
  (* Repair (see .mli): discard the doomed transaction's buffered writes by
     resetting the view to the committed snapshot. *)
  Array.blit t.committed 0 t.vals.(p) 0 t.cfg.ntvars;
  Event.Aborted

let deliver_commit t p =
  (* Broadcast pk's view and doom the other members of the concurrent
     group (prose semantics; the formal rule's "every other process" is a
     known discrepancy, see .mli). *)
  Array.blit t.vals.(p) 0 t.committed 0 t.cfg.ntvars;
  for k = 1 to t.cfg.nprocs do
    if t.cp.(k) && k <> p then t.status.(k) <- `A;
    Array.blit t.committed 0 t.vals.(k) 0 t.cfg.ntvars
  done;
  Array.fill t.cp 0 (Array.length t.cp) false;
  Event.Committed

let poll t p =
  match Tm_intf.Mailbox.get t.mail p with
  | None -> None
  | Some inv ->
      let resp =
        match t.status.(p) with
        | `A -> deliver_abort t p
        | `C -> (
            match inv with
            | Event.Read x -> Event.Value t.vals.(p).(x)
            | Event.Write (_, _) -> Event.Ok_written
            | Event.Try_commit -> deliver_commit t p)
      in
      Tm_intf.Mailbox.clear t.mail p;
      Some resp

let pending t p = Tm_intf.Mailbox.get t.mail p

type state = {
  s_status : [ `C | `A ] list;
  s_cp : Event.proc list;
  s_vals : int list list;
  s_pending : (Event.proc * Event.invocation option) list;
}

let state t =
  {
    s_status = List.init t.cfg.nprocs (fun k -> t.status.(k + 1));
    s_cp =
      List.filter (fun k -> t.cp.(k)) (List.init t.cfg.nprocs (fun k -> k + 1));
    s_vals = List.init t.cfg.nprocs (fun k -> Array.to_list t.vals.(k + 1));
    s_pending =
      List.init t.cfg.nprocs (fun k ->
          (k + 1, Tm_intf.Mailbox.get t.mail (k + 1)));
  }

let compare_state = Stdlib.compare

let pp_state ppf s =
  let pp_status ppf = function `C -> Fmt.string ppf "c" | `A -> Fmt.string ppf "a" in
  let pp_pending ppf = function
    | _, None -> Fmt.string ppf "_"
    | _, Some i -> Event.pp_invocation ppf i
  in
  Fmt.pf ppf "(status=[%a] cp={%a} val=[%a] f=[%a])"
    Fmt.(list ~sep:(any "") pp_status)
    s.s_status
    Fmt.(list ~sep:(any ",") int)
    s.s_cp
    Fmt.(list ~sep:(any ";") (list ~sep:(any ",") int))
    s.s_vals
    Fmt.(list ~sep:(any ",") pp_pending)
    s.s_pending

let status_of t p = t.status.(p)

let concurrent_group t =
  List.filter (fun k -> t.cp.(k)) (List.init t.cfg.nprocs (fun k -> k + 1))

let view t p x = t.vals.(p).(x)
