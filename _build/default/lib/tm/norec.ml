open Tm_history

type commit_phase =
  | Idle
  | Writing_back of (Event.tvar * Event.value) list

type txn = {
  mutable started : bool;
  mutable snapshot : int;
  mutable reads : (Event.tvar * Event.value) list;
  mutable writes : (Event.tvar * Event.value) list;  (** latest first *)
  mutable phase : commit_phase;
}

type t = {
  cfg : Tm_intf.config;
  mail : Tm_intf.Mailbox.t;
  mutable counter : int;  (** bumped by every writer commit *)
  mutable writer : Event.proc option;  (** holder of the commit lock *)
  value : int array;
  txns : txn array;
}

let name = "norec"

let describe =
  "NOrec-style: single commit lock, value-based validation (solo progress \
   in crash-free systems)"

let fresh_txn () =
  { started = false; snapshot = 0; reads = []; writes = []; phase = Idle }

let create cfg =
  {
    cfg;
    mail = Tm_intf.Mailbox.create cfg;
    counter = 0;
    writer = None;
    value = Array.make cfg.ntvars 0;
    txns = Array.init (cfg.nprocs + 1) (fun _ -> fresh_txn ());
  }

let invoke t p inv =
  Tm_intf.Mailbox.check_range t.cfg p inv;
  Tm_intf.Mailbox.put t.mail p inv

let begin_if_needed t p =
  let txn = t.txns.(p) in
  if not txn.started then begin
    txn.started <- true;
    txn.snapshot <- t.counter;
    txn.reads <- [];
    txn.writes <- [];
    txn.phase <- Idle
  end

let abort t p =
  if t.writer = Some p then t.writer <- None;
  t.txns.(p) <- fresh_txn ();
  Event.Aborted

(* Re-validate the read set by value; on success adopt the current
   snapshot. *)
let revalidate t p =
  let txn = t.txns.(p) in
  if List.for_all (fun (x, v) -> t.value.(x) = v) txn.reads then begin
    txn.snapshot <- t.counter;
    true
  end
  else false

let write_set txn =
  List.sort_uniq Int.compare (List.map fst txn.writes)
  |> List.map (fun x -> (x, List.assoc x txn.writes))

let poll t p =
  match Tm_intf.Mailbox.get t.mail p with
  | None -> None
  | Some inv ->
      begin_if_needed t p;
      let txn = t.txns.(p) in
      let answer resp =
        Tm_intf.Mailbox.clear t.mail p;
        Some resp
      in
      (match inv with
      | Event.Read x -> (
          match List.assoc_opt x txn.writes with
          | Some v -> answer (Event.Value v)
          | None ->
              (* Wait out an in-flight writer: its write-back is not an
                 atomic snapshot. *)
              if t.writer <> None && t.writer <> Some p then None
              else if txn.snapshot <> t.counter && not (revalidate t p) then
                answer (abort t p)
              else begin
                let v = t.value.(x) in
                txn.reads <- (x, v) :: txn.reads;
                answer (Event.Value v)
              end)
      | Event.Write (x, v) ->
          txn.writes <- (x, v) :: txn.writes;
          answer Event.Ok_written
      | Event.Try_commit -> (
          match txn.phase with
          | Idle ->
              if write_set txn = [] then
                (* Read-only: the read set was coherent at the last
                   (re)validation and no writer has intervened since the
                   snapshot was adopted. *)
                if txn.snapshot = t.counter || revalidate t p then
                  answer
                    (t.txns.(p) <- fresh_txn ();
                     Event.Committed)
                else answer (abort t p)
              else if t.writer <> None then None
              else begin
                t.writer <- Some p;
                if not (revalidate t p) then answer (abort t p)
                else begin
                  txn.phase <- Writing_back (write_set txn);
                  None
                end
              end
          | Writing_back [] ->
              t.counter <- t.counter + 1;
              t.writer <- None;
              t.txns.(p) <- fresh_txn ();
              answer Event.Committed
          | Writing_back ((x, v) :: rest) ->
              t.value.(x) <- v;
              txn.phase <- Writing_back rest;
              None))

let pending t p = Tm_intf.Mailbox.get t.mail p
