(** A deliberately over-conservative TM: an updating transaction may commit
    only when no other transaction is live.

    Always responsive (every poll answers; conflicting commits are answered
    with an abort, never delayed), trivially opaque (a writer commits only
    in total quiescence), but with {e no} useful liveness: one process that
    merely keeps a transaction open — a suspended process (a crash), or a
    parasitic reader — starves every writer forever.

    This is the zoo member that {e realizes the remaining branches of the
    Theorem-1 proof}: against Algorithm 1 it produces the Figure 9 suffix
    (p1 reads once and "crashes"; p2 is aborted forever — p2 correct,
    alone, starving), and against Algorithm 2 the Figure 12 suffix (p1
    reads forever without ever being aborted or attempting to commit —
    a live parasitic process — while p2 is aborted forever).  The
    responsive TMs of the zoo can only produce the Figure 10/13 suffixes,
    so without this strawman two of the proof's four case figures would
    never be observed in an actual run. *)

include Tm_intf.S
