type entry = {
  entry_name : string;
  entry_describe : string;
  impl : (module Tm_intf.S);
  responsive : bool;
}

let of_module ?(responsive = true) (module M : Tm_intf.S) =
  {
    entry_name = M.name;
    entry_describe = M.describe;
    impl = (module M);
    responsive;
  }

let all =
  [
    of_module ~responsive:false (module Global_lock);
    of_module (module Fgp);
    of_module (module Tl2);
    of_module (module Tinystm);
    of_module (Tinystm.make ~extension:true);
    of_module (module Swisstm);
    of_module (module Dstm);
    of_module (Dstm.make (Cm.polite 4));
    of_module (Dstm.make Cm.karma);
    of_module (Dstm.make Cm.greedy);
    of_module (module Ostm);
    of_module ~responsive:false (module Norec);
    of_module (module Mvstm);
    of_module (module Quiescent);
    of_module ~responsive:false (module Twopl);
    of_module (module Fgp_priority);
  ]

let responsive = List.filter (fun e -> e.responsive) all

let find name = List.find_opt (fun e -> e.entry_name = name) all

let names = List.map (fun e -> e.entry_name) all

let instance e cfg = Tm_intf.pack e.impl cfg
