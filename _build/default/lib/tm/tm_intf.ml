open Tm_history

(** The common interface of every TM implementation in the zoo.

    The paper models a TM as an I/O automaton receiving invocation events
    and emitting response events, with the interleaving chosen by an
    adversarial scheduler.  We mirror that as a micro-step discipline:

    - {!module-type-S.invoke} submits an invocation on behalf of a process
      (which must not already have one pending);
    - {!module-type-S.poll} lets the TM perform {e one bounded internal
      step} on behalf of that process and possibly deliver its response.

    Everything a real TM does between an invocation and its response —
    acquiring locks, validating read sets, writing back, helping — happens
    inside [poll] calls, one bounded step per call.  A {e crashed} process
    is simply never polled again, so whatever its in-flight operation holds
    (an encounter-time lock, a commit-lock) stays held; this is what makes
    the progress taxonomy of Section 3.2.3 observable.  A {e blocking} TM
    (e.g. the global-lock TM) returns [None] from [poll] until it can
    answer; a {e responsive} TM answers every invocation within a bounded
    number of polls, possibly with an abort. *)

type config = {
  nprocs : int;  (** number of processes, named 1..nprocs *)
  ntvars : int;  (** number of t-variables, named 0..ntvars-1 *)
  seed : int;  (** seed for any randomized policy (contention managers) *)
}

let config ?(seed = 0) ~nprocs ~ntvars () = { nprocs; ntvars; seed }

module type S = sig
  type t

  val name : string
  val describe : string

  val create : config -> t

  val invoke : t -> Event.proc -> Event.invocation -> unit
  (** Submit an invocation.  @raise Invalid_argument if the process already
      has a pending invocation or the process/t-variable is out of range. *)

  val poll : t -> Event.proc -> Event.response option
  (** One bounded internal step for this process; [Some r] delivers the
      response to its pending invocation.  [None] when the process has no
      pending invocation. *)

  val pending : t -> Event.proc -> Event.invocation option
end

(** A TM instance packed with its state, convenient for heterogeneous
    registries and runners. *)
type instance = {
  name : string;
  invoke : Event.proc -> Event.invocation -> unit;
  poll : Event.proc -> Event.response option;
  pending : Event.proc -> Event.invocation option;
}

let pack (module M : S) cfg =
  let t = M.create cfg in
  {
    name = M.name;
    invoke = M.invoke t;
    poll = M.poll t;
    pending = M.pending t;
  }

(** Shared per-process pending-invocation bookkeeping. *)
module Mailbox = struct
  type t = Event.invocation option array

  let create cfg : t = Array.make (cfg.nprocs + 1) None

  let check_range cfg p (inv : Event.invocation) =
    if p < 1 || p > cfg.nprocs then
      invalid_arg (Fmt.str "process p%d out of range" p);
    match Event.tvar_of_invocation inv with
    | Some x when x < 0 || x >= cfg.ntvars ->
        invalid_arg (Fmt.str "t-variable x%d out of range" x)
    | Some _ | None -> ()

  let put (m : t) p inv =
    match m.(p) with
    | Some _ ->
        invalid_arg
          (Fmt.str "process p%d already has a pending invocation" p)
    | None -> m.(p) <- Some inv

  let get (m : t) p = m.(p)
  let clear (m : t) p = m.(p) <- None
end
