open Tm_history

(** Contention managers.

    The paper (Section 2.2) treats the contention manager as an integral
    part of the TM: it may delay transactions or force aborts, and the
    impossibility results apply to the whole.  Our obstruction-free DSTM
    implementation consults one whenever a transaction conflicts with the
    owner of a t-variable.

    A decision is one of:
    - [Steal] — abort the victim and take the resource;
    - [Wait] — back off (the poll returns no response; the operation is
      retried at the next poll);
    - [Abort_self] — abort the requesting transaction.

    The classic policies behave differently in the face of faults: an
    aggressive manager converts parasitic owners into aborted (hence
    correct) processes, while polite/karma managers eventually steal from
    crashed owners but can let a determined parasite starve everyone —
    the experiments of EXPERIMENTS.md use exactly these contrasts. *)

type decision = Steal | Wait | Abort_self

type view = {
  proc : Event.proc;
  ops_done : int;  (** operations completed in the current transaction *)
  waits : int;  (** consecutive waits on the current conflict *)
  timestamp : int;  (** transaction start time (smaller = older) *)
}

type t = {
  cm_name : string;
  decide : attacker:view -> victim:view -> decision;
}

val aggressive : t
(** Always steal. *)

val polite : int -> t
(** Wait up to the given bound, then steal. *)

val karma : t
(** Steal iff the attacker's accumulated work (operations plus waits) is at
    least the victim's; otherwise wait. *)

val greedy : t
(** Older transaction wins: steal iff the attacker started earlier,
    otherwise abort self. *)

val timestamp : int -> t
(** Older transactions steal; younger ones wait up to the bound, then
    abort themselves. *)

val all : t list
val by_name : string -> t option
