(** The single-global-lock TM of Section 1.1 / Section 3.2.1.

    Every transaction runs under one fair (FIFO) global lock, so
    transactions never conflict and {e no transaction is ever aborted}.
    In a system that is both crash-free and parasitic-free this TM ensures
    opacity and local progress — the paper's observation that local
    progress is achievable when nobody is faulty.

    The price is blocking: a process that asks for the lock while it is
    held gets no response ([poll] returns [None]) until the holder commits.
    A crashed lock holder therefore blocks every other process forever, and
    a parasitic holder never commits, which is exactly how this TM escapes
    the Theorem-1 impossibility (it is not responsive, i.e. its operations
    are not wait-free). *)

include Tm_intf.S
