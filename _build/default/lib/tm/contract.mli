(** The progress contracts of the zoo, as data.

    This is the Section-3.2.3 classification — extended to the whole zoo —
    in queryable form: for each TM, the system assumptions under which it
    guarantees a solo runner's progress, whether it is responsive, and
    whether it guarantees global progress in every fault-prone system.
    The test suite checks each contract against the {e measured}
    solo-progress matrix, so this table cannot silently drift from the
    implementations. *)

type assumption =
  | Crash_free  (** no process crashes (mid-transaction or mid-commit) *)
  | Parasitic_free  (** no process runs forever without invoking [tryC] *)

type t = {
  tm_name : string;
  solo_requires : assumption list;
      (** solo progress is guaranteed iff the system satisfies all of
          these (the empty list = any fault-prone system) *)
  global_progress_fault_prone : bool;
      (** at least one correct process always progresses, whatever the
          faults *)
  notes : string;
}

val all : t list
val find : string -> t option

val solo_under :
  t -> crash_free:bool -> parasitic_free:bool -> bool
(** Whether the contract promises solo progress in the given system
    model. *)

val pp : Format.formatter -> t -> unit
