(** A TinySTM/SwissTM-style TM: encounter-time locking, write-through with
    an undo log (references [16, 17] of the paper).

    A write locks its t-variable {e at encounter time} and updates it in
    place, logging the old value; commit stamps new versions and releases;
    abort rolls back.  Conflicting operations abort the requester
    immediately, so the TM is responsive — but a transaction that stops
    between its first write and its commit (a crashed process, or a
    parasitic one that keeps writing) holds its encounter locks forever and
    every conflicting transaction aborts forever.

    Progress character (Section 3.2.3): ensures solo progress only in
    systems that are both {e crash-free and parasitic-free}. *)

include Tm_intf.S

val make : extension:bool -> (module Tm_intf.S)
(** [make ~extension:true] is the variant with {e timestamp extension}
    (the real TinySTM's signature feature): when a read or write meets a
    version newer than the snapshot, the transaction re-validates its read
    set and, if intact, extends its snapshot to the current clock instead
    of aborting.  Same progress character, markedly lower abort rate — the
    P2d ablation quantifies it.  Its [name] is ["tinystm-ext"]. *)
