(** A DSTM-style obstruction-free TM with ownership stealing (Herlihy,
    Luchangco, Moir, Scherer, PODC 2003 — reference [14] of the paper).

    A writer acquires {e revocable ownership} of each t-variable it
    updates; a conflicting transaction may abort ("doom") the owner and
    take the ownership, as arbitrated by a pluggable contention manager
    ({!Cm}).  Commit is a single atomic step, so a crashed process never
    leaves an unrevocable obstruction — whatever it owned can be stolen.
    Reads are invisible and value-validated on every operation, giving
    opacity.

    Progress character (Section 3.2.3): ensures solo progress in
    {e parasitic-free} systems (crashes are harmless because ownership is
    revocable); a parasitic writer under a conservative contention manager
    (polite/karma) can starve a solo runner, while an aggressive manager
    merely converts the parasite into an ever-aborted — hence correct —
    process. *)

val make : Cm.t -> (module Tm_intf.S)
(** A DSTM variant using the given contention manager; its [name] is
    ["dstm-" ^ cm_name]. *)

include Tm_intf.S
(** The default variant (aggressive contention manager). *)
