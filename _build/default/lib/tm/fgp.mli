open Tm_history

(** The paper's global-progress automaton [Fgp] (Section 6, Theorem 3).

    Each state is a tuple [(Status, CP, Val, f)]:

    - [Status.(k) ∈ {c, a}] — when [a], some process committed while [pk]
      was in the concurrent group, and [pk]'s next response is the abort
      event [A_k] (after which its status reverts to [c]);
    - [CP] — the current group of mutually concurrent processes, none of
      which has committed; every invocation adds its process to [CP]; a
      commit empties it;
    - [Val.(k).(j)] — process [pk]'s view of t-variable [xj]; reads return
      it, writes update it, and a commit by [pk] broadcasts [pk]'s row to
      every process;
    - [f] — the pending invocation of each process (the mailbox).

    On commit of [pk], every {e other} process in [CP] gets status [a].
    This follows the paper's prose (and its Figure 16 example history); the
    paper's formal transition rule says {e every other process} gets status
    [a], which contradicts both — we follow the prose and record the
    discrepancy here and in DESIGN.md.

    One further repair, also recorded in DESIGN.md: the paper's write rule
    updates [Val.(k).(j)] at invocation time with no status guard, so a
    doomed process's buffered write would survive its abort and be read
    back by its {e next} transaction, violating opacity.  We keep a
    committed snapshot and reset [Val.(k)] to it when delivering [A_k],
    which is what the Theorem-3 opacity proof implicitly assumes.

    [Fgp] is responsive (every poll answers), ensures opacity, and ensures
    global progress in every fault-prone system; it does {e not} ensure
    local progress — consistently with Theorem 1 — because whichever group
    member commits first dooms the rest. *)

include Tm_intf.S

type state

val state : t -> state
(** A snapshot of the automaton state (for the explorer and tests). *)

val pp_state : Format.formatter -> state -> unit

val compare_state : state -> state -> int

val status_of : t -> Event.proc -> [ `C | `A ]
val concurrent_group : t -> Event.proc list
val view : t -> Event.proc -> Event.tvar -> Event.value
