open Tm_history

(** A priority variant of [Fgp], answering the paper's concluding-remarks
    question about liveness properties that "guarantee progress for
    processes with higher priority".

    Identical to {!Fgp} except for the commit rule: a process may commit
    only if no {e higher-priority} process (lower identifier = higher
    priority) is currently in the concurrent group; otherwise its [tryC]
    is answered with an abort.  Consequently the highest-priority process
    is never aborted at all — it enjoys {e local} progress — and in
    fault-free runs priorities are served in order (the progress_zoo and
    FW experiments measure this).

    The cost is exactly what Theorem 1 predicts for any such strengthening:
    the guarantee needs fault-freedom above you in the priority order.  A
    crashed or parasitic process stays in the concurrent group forever, and
    every lower-priority process aborts forever — so [priority_progress]
    for the remaining correct processes fails in fault-prone systems, and
    the TM as a whole still only ensures global progress there when the
    faulty process is the lowest-priority one.  Opacity is unaffected (the
    commit rule is strictly more restrictive than [Fgp]'s). *)

include Tm_intf.S

val priority_of : Event.proc -> int
(** Smaller value = higher priority; this implementation uses the process
    identifier itself. *)
