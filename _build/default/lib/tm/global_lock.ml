open Tm_history

type t = {
  cfg : Tm_intf.config;
  mail : Tm_intf.Mailbox.t;
  store : int array;  (** current values; only the lock holder touches them *)
  mutable owner : Event.proc option;
  queue : Event.proc Queue.t;  (** FIFO of processes waiting for the lock *)
  waiting : bool array;  (** waiting.(p): p is already enqueued *)
}

let name = "global-lock"

let describe =
  "single fair global lock; never aborts; blocks while the lock is held \
   (local progress iff crash-free and parasitic-free)"

let create cfg =
  {
    cfg;
    mail = Tm_intf.Mailbox.create cfg;
    store = Array.make cfg.ntvars 0;
    owner = None;
    queue = Queue.create ();
    waiting = Array.make (cfg.nprocs + 1) false;
  }

let invoke t p inv =
  Tm_intf.Mailbox.check_range t.cfg p inv;
  Tm_intf.Mailbox.put t.mail p inv

let holds_lock t p = t.owner = Some p

(* Hand the lock to the next waiter, if any. *)
let release t =
  t.owner <- None;
  match Queue.take_opt t.queue with
  | None -> ()
  | Some q ->
      t.waiting.(q) <- false;
      t.owner <- Some q

let try_acquire t p =
  match t.owner with
  | Some q when q = p -> true
  | Some _ ->
      if not t.waiting.(p) then begin
        t.waiting.(p) <- true;
        Queue.add p t.queue
      end;
      false
  | None ->
      t.owner <- Some p;
      true

let poll t p =
  match Tm_intf.Mailbox.get t.mail p with
  | None -> None
  | Some inv ->
      if not (holds_lock t p || try_acquire t p) then None
      else begin
        let resp =
          match inv with
          | Event.Read x -> Event.Value t.store.(x)
          | Event.Write (x, v) ->
              t.store.(x) <- v;
              Event.Ok_written
          | Event.Try_commit ->
              release t;
              Event.Committed
        in
        Tm_intf.Mailbox.clear t.mail p;
        Some resp
      end

let pending t p = Tm_intf.Mailbox.get t.mail p
