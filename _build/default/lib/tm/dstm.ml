open Tm_history

type txn = {
  mutable started : bool;
  mutable doomed : bool;
  mutable reads : (Event.tvar * Event.value) list;  (** value-based *)
  mutable ops_done : int;
  mutable waits : int;
  mutable timestamp : int;
}

type t = {
  cfg : Tm_intf.config;
  mail : Tm_intf.Mailbox.t;
  mutable time : int;  (** transaction birth dates for the CM *)
  committed : int array;  (** committed values *)
  tentative : int array;  (** owner's uncommitted value *)
  owner : Event.proc option array;
  txns : txn array;
  cm : Cm.t;
}

let fresh_txn () =
  {
    started = false;
    doomed = false;
    reads = [];
    ops_done = 0;
    waits = 0;
    timestamp = 0;
  }

let create_with cm cfg =
  {
    cfg;
    mail = Tm_intf.Mailbox.create cfg;
    time = 0;
    committed = Array.make cfg.ntvars 0;
    tentative = Array.make cfg.ntvars 0;
    owner = Array.make cfg.ntvars None;
    txns = Array.init (cfg.nprocs + 1) (fun _ -> fresh_txn ());
    cm;
  }

let invoke_t t p inv =
  Tm_intf.Mailbox.check_range t.cfg p inv;
  Tm_intf.Mailbox.put t.mail p inv

let begin_if_needed t p =
  let txn = t.txns.(p) in
  if not txn.started then begin
    t.time <- t.time + 1;
    txn.started <- true;
    txn.doomed <- false;
    txn.reads <- [];
    txn.ops_done <- 0;
    txn.waits <- 0;
    txn.timestamp <- t.time
  end

(* Abort p's transaction: drop its ownerships (tentative values are simply
   forgotten; the committed values were never touched). *)
let release_ownerships t p =
  Array.iteri (fun x o -> if o = Some p then t.owner.(x) <- None) t.owner

let deliver_abort t p =
  release_ownerships t p;
  t.txns.(p) <- fresh_txn ();
  Event.Aborted

let doom t q =
  release_ownerships t q;
  t.txns.(q).doomed <- true

let view_of t p =
  let txn = t.txns.(p) in
  {
    Cm.proc = p;
    ops_done = txn.ops_done;
    waits = txn.waits;
    timestamp = txn.timestamp;
  }

(* Value-based validation: every read must still see its value in the
   committed state. *)
let reads_valid t p =
  List.for_all (fun (x, v) -> t.committed.(x) = v) t.txns.(p).reads

(* Resolve a conflict between p and the owner q of variable x.
   Returns [`Proceed] if p may now use x, [`Wait], or [`Abort_self]. *)
let resolve t p q =
  let decision =
    t.cm.Cm.decide ~attacker:(view_of t p) ~victim:(view_of t q)
  in
  match decision with
  | Cm.Steal ->
      doom t q;
      `Proceed
  | Cm.Wait ->
      t.txns.(p).waits <- t.txns.(p).waits + 1;
      `Wait
  | Cm.Abort_self -> `Abort_self

let poll_t t p =
  match Tm_intf.Mailbox.get t.mail p with
  | None -> None
  | Some inv ->
      begin_if_needed t p;
      let txn = t.txns.(p) in
      let answer resp =
        Tm_intf.Mailbox.clear t.mail p;
        Some resp
      in
      if txn.doomed then answer (deliver_abort t p)
      else if not (reads_valid t p) then answer (deliver_abort t p)
      else
        let use_variable x k =
          match t.owner.(x) with
          | Some q when q <> p -> (
              match resolve t p q with
              | `Proceed -> k ()
              | `Wait -> None
              | `Abort_self -> answer (deliver_abort t p))
          | Some _ | None -> k ()
        in
        let step () =
          match inv with
          | Event.Read x ->
              use_variable x (fun () ->
                  let v =
                    if t.owner.(x) = Some p then t.tentative.(x)
                    else t.committed.(x)
                  in
                  if t.owner.(x) <> Some p then txn.reads <- (x, v) :: txn.reads;
                  txn.ops_done <- txn.ops_done + 1;
                  txn.waits <- 0;
                  answer (Event.Value v))
          | Event.Write (x, v) ->
              use_variable x (fun () ->
                  if t.owner.(x) <> Some p then t.owner.(x) <- Some p;
                  t.tentative.(x) <- v;
                  txn.ops_done <- txn.ops_done + 1;
                  txn.waits <- 0;
                  answer Event.Ok_written)
          | Event.Try_commit ->
              (* Commit is one atomic step: re-validate reads, then install
                 tentative values. *)
              if not (reads_valid t p) then answer (deliver_abort t p)
              else begin
                Array.iteri
                  (fun x o ->
                    if o = Some p then begin
                      t.committed.(x) <- t.tentative.(x);
                      t.owner.(x) <- None
                    end)
                  t.owner;
                t.txns.(p) <- fresh_txn ();
                answer Event.Committed
              end
        in
        step ()

let pending_t t p = Tm_intf.Mailbox.get t.mail p

let make cm : (module Tm_intf.S) =
  (module struct
    type nonrec t = t

    let name = "dstm-" ^ cm.Cm.cm_name

    let describe =
      "DSTM-style obstruction-free TM with revocable ownership, contention \
       manager: " ^ cm.Cm.cm_name

    let create = create_with cm
    let invoke = invoke_t
    let poll = poll_t
    let pending = pending_t
  end)

(* Default variant: aggressive contention manager. *)
let name = "dstm-aggressive"

let describe =
  "DSTM-style obstruction-free TM with revocable ownership, contention \
   manager: aggressive"

let create = create_with Cm.aggressive
let invoke = invoke_t
let poll = poll_t
let pending = pending_t
