(** A TL2-style TM: deferred updates, commit-time locking, global version
    clock (Dice, Shalev, Shavit, DISC 2006 — reference [15] of the paper).

    Writes are buffered; locks are taken only inside [tryC], one per poll,
    in canonical t-variable order.  Reads validate against the
    transaction's read version and abort on conflict, so the TM is
    responsive (every operation answers within a bounded number of polls)
    {e except} that a process that crashes mid-commit leaves its
    write-locks held, after which every conflicting transaction aborts
    forever.

    Progress character (Section 3.2.3): ensures solo progress in
    {e crash-free} systems — a parasitic process never reaches [tryC], so
    it never holds a lock and cannot block a solo runner; a crash inside
    the commit procedure, however, blocks conflicting processes forever. *)

include Tm_intf.S
