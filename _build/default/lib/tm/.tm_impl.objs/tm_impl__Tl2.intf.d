lib/tm/tl2.mli: Tm_intf
