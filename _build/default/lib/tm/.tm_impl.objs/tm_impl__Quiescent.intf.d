lib/tm/quiescent.mli: Tm_intf
