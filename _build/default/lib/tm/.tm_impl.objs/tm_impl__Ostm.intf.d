lib/tm/ostm.mli: Tm_intf
