lib/tm/dstm.ml: Array Cm Event List Tm_history Tm_intf
