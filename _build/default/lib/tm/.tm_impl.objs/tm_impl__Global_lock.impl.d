lib/tm/global_lock.ml: Array Event Queue Tm_history Tm_intf
