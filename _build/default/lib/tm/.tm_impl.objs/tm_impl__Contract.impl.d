lib/tm/contract.ml: Fmt List String
