lib/tm/quiescent.ml: Array Event List Tm_history Tm_intf
