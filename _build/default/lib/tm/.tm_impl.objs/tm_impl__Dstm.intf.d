lib/tm/dstm.mli: Cm Tm_intf
