lib/tm/tinystm.ml: Array Event List Tm_history Tm_intf
