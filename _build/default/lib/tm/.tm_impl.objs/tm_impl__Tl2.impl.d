lib/tm/tl2.ml: Array Event Int List Tm_history Tm_intf
