lib/tm/twopl.mli: Tm_intf
