lib/tm/ostm.ml: Array Event Int List Tm_history Tm_intf
