lib/tm/swisstm.mli: Tm_intf
