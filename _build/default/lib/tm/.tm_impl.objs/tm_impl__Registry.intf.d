lib/tm/registry.mli: Tm_intf
