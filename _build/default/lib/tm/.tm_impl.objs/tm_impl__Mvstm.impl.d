lib/tm/mvstm.ml: Array Event Int List Tm_history Tm_intf
