lib/tm/fgp.ml: Array Event Fmt List Stdlib Tm_history Tm_intf
