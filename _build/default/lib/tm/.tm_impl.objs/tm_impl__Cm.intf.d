lib/tm/cm.mli: Event Tm_history
