lib/tm/cm.ml: Event Fmt List Tm_history
