lib/tm/fgp.mli: Event Format Tm_history Tm_intf
