lib/tm/fgp_priority.ml: Array Event Tm_history Tm_intf
