lib/tm/global_lock.mli: Tm_intf
