lib/tm/tm_intf.ml: Array Event Fmt Tm_history
