lib/tm/norec.mli: Tm_intf
