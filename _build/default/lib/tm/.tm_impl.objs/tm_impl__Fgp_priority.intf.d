lib/tm/fgp_priority.mli: Event Tm_history Tm_intf
