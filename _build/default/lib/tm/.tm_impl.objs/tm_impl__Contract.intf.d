lib/tm/contract.mli: Format
