lib/tm/mvstm.mli: Tm_intf
