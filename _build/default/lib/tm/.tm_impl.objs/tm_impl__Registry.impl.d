lib/tm/registry.ml: Cm Dstm Fgp Fgp_priority Global_lock List Mvstm Norec Ostm Quiescent Swisstm Tinystm Tl2 Tm_intf Twopl
