lib/tm/tinystm.mli: Tm_intf
