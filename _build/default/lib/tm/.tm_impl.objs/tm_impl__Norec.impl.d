lib/tm/norec.ml: Array Event Int List Tm_history Tm_intf
