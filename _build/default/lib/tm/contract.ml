type assumption = Crash_free | Parasitic_free

type t = {
  tm_name : string;
  solo_requires : assumption list;
  global_progress_fault_prone : bool;
  notes : string;
}

let v tm_name solo_requires global_progress_fault_prone notes =
  { tm_name; solo_requires; global_progress_fault_prone; notes }

let all =
  [
    v "global-lock"
      [ Crash_free; Parasitic_free ]
      false "blocking; local progress when nobody is faulty (§3.2.1)";
    v "fgp" [] true "the paper's Theorem-3 automaton";
    v "tl2" [ Crash_free ]
      false "commit-time locks strand on a mid-commit crash (§3.2.3)";
    v "tinystm"
      [ Crash_free; Parasitic_free ]
      false "encounter-time locks strand on any mid-transaction fault";
    v "tinystm-ext"
      [ Crash_free; Parasitic_free ]
      false "timestamp extension changes abort rates, not fault character";
    v "swisstm"
      [ Crash_free; Parasitic_free ]
      false "eager write locks strand like TinySTM's (§3.2.3)";
    v "dstm-aggressive" [ Parasitic_free ] false
      "revocable ownership tolerates crashes; parasites livelock it";
    v "dstm-polite-4" [] false
      "bounded politeness outwaits parasites and steals from crashes";
    v "dstm-karma" [] false
      "stealing resets a parasite's karma, converting it into an aborted \
       process";
    v "dstm-greedy"
      [ Crash_free; Parasitic_free ]
      false "timestamp priority waits forever for an older faulty victim";
    v "ostm" [] true "lock-free helping finishes crashed commits";
    v "norec" [ Crash_free ]
      false "the single commit lock strands on a mid-commit crash";
    v "mvstm" [ Crash_free ]
      false "commit-time locks like TL2; reads never abort";
    v "quiescent"
      [ Crash_free; Parasitic_free ]
      false "one open transaction starves all writers (Figures 9/12)";
    v "twopl"
      [ Crash_free; Parasitic_free ]
      false
      "a faulty lock holder is not waiting, so deadlock detection cannot \
       free its locks";
    v "fgp-priority"
      [ Crash_free; Parasitic_free ]
      false
      "priority progress only: a fault above you in the priority order \
       starves you";
  ]

let find name = List.find_opt (fun c -> c.tm_name = name) all

let solo_under c ~crash_free ~parasitic_free =
  List.for_all
    (function
      | Crash_free -> crash_free
      | Parasitic_free -> parasitic_free)
    c.solo_requires

let pp ppf c =
  let assumption = function
    | Crash_free -> "crash-free"
    | Parasitic_free -> "parasitic-free"
  in
  Fmt.pf ppf "%-18s solo: %s%s — %s" c.tm_name
    (match c.solo_requires with
    | [] -> "any fault-prone system"
    | l -> String.concat " + " (List.map assumption l))
    (if c.global_progress_fault_prone then "; global progress always" else "")
    c.notes
