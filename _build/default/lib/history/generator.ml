type config = { nprocs : int; ntvars : int; max_value : int }

let default = { nprocs = 3; ntvars = 3; max_value = 5 }

(* A tiny self-contained splitmix64, so this library stays independent of
   the simulation layer. *)
module Rng = struct
  type t = { mutable state : int64 }

  let mix z =
    let open Int64 in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  let create seed = { state = mix (Int64.of_int ((seed * 2) + 1)) }

  let int t bound =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let r = Int64.to_int (Int64.shift_right_logical (mix t.state) 2) in
    r mod bound

  let bool t = int t 2 = 1
end

let well_formed ?(config = default) ~steps seed =
  let g = Rng.create seed in
  let pending = Hashtbl.create 8 in
  let rec go acc n =
    if n = 0 then List.rev acc
    else
      let p = 1 + Rng.int g config.nprocs in
      match Hashtbl.find_opt pending p with
      | None ->
          let inv =
            match Rng.int g 4 with
            | 0 -> Event.Read (Rng.int g config.ntvars)
            | 1 | 2 ->
                Event.Write
                  (Rng.int g config.ntvars, Rng.int g (config.max_value + 1))
            | _ -> Event.Try_commit
          in
          Hashtbl.replace pending p inv;
          go (Event.Inv (p, inv) :: acc) (n - 1)
      | Some inv ->
          let resp =
            if Rng.int g 5 = 0 then Event.Aborted
            else
              match inv with
              | Event.Read _ -> Event.Value (Rng.int g (config.max_value + 1))
              | Event.Write _ -> Event.Ok_written
              | Event.Try_commit ->
                  if Rng.bool g then Event.Committed else Event.Aborted
          in
          Hashtbl.remove pending p;
          go (Event.Res (p, resp) :: acc) (n - 1)
  in
  History.of_events (go [] steps)

let serial ?(config = default) ~transactions seed =
  let g = Rng.create seed in
  let store = Array.make config.ntvars 0 in
  let steps = ref [] in
  for _ = 1 to transactions do
    let p = 1 + Rng.int g config.nprocs in
    let nops = 1 + Rng.int g 4 in
    let commits = Rng.bool g in
    let own = Hashtbl.create 4 in
    for _ = 1 to nops do
      let x = Rng.int g config.ntvars in
      if Rng.bool g then begin
        let v =
          match Hashtbl.find_opt own x with
          | Some v -> v
          | None -> store.(x)
        in
        steps := History.read p x v :: !steps
      end
      else begin
        let v = Rng.int g (config.max_value + 1) in
        Hashtbl.replace own x v;
        steps := History.write p x v :: !steps
      end
    done;
    if commits then begin
      Hashtbl.iter (fun x v -> store.(x) <- v) own;
      steps := History.commit p :: !steps
    end
    else steps := History.abort p :: !steps
  done;
  History.steps (List.rev !steps)

let lasso ?(config = default) seed =
  let g = Rng.create seed in
  let pair p =
    match Rng.int g 5 with
    | 0 -> History.read p (Rng.int g config.ntvars) 0
    | 1 -> History.read_aborted p (Rng.int g config.ntvars)
    | 2 ->
        History.write p (Rng.int g config.ntvars)
          (Rng.int g (config.max_value + 1))
    | 3 -> History.commit p
    | _ -> History.abort p
  in
  let cycle_procs =
    List.filter (fun _ -> Rng.bool g) (List.init config.nprocs (fun i -> i + 1))
  in
  let cycle_procs = if cycle_procs = [] then [ 1 ] else cycle_procs in
  let cycle =
    List.concat
      (List.init
         (1 + Rng.int g 6)
         (fun _ ->
           pair (List.nth cycle_procs (Rng.int g (List.length cycle_procs)))))
  in
  let stem =
    List.concat
      (List.init (Rng.int g 4) (fun _ -> pair (1 + Rng.int g config.nprocs)))
  in
  (* Optionally a dangling invocation for a non-cycle process (a crash
     mid-operation). *)
  let dangling =
    let outside =
      List.filter
        (fun p -> not (List.mem p cycle_procs))
        (List.init config.nprocs (fun i -> i + 1))
    in
    match outside with
    | p :: _ when Rng.bool g -> [ Event.Inv (p, Event.Read 0) ]
    | _ -> []
  in
  Lasso.v ~stem:(stem @ dangling) ~cycle

let mutate_read h seed =
  let g = Rng.create seed in
  let es = Array.of_list (History.events h) in
  (* Eligible reads: value responses whose read is not shadowed by an own
     write earlier in the same transaction. *)
  let own = Hashtbl.create 8 in
  let eligible = ref [] in
  Array.iteri
    (fun i e ->
      match e with
      | Event.Inv (p, Event.Write (x, _)) -> Hashtbl.replace own (p, x) ()
      | Event.Res (p, (Event.Committed | Event.Aborted)) ->
          Hashtbl.iter
            (fun (q, x) () -> if q = p then Hashtbl.remove own (q, x))
            (Hashtbl.copy own)
      | Event.Res (p, Event.Value v) -> (
          match es.(i - 1) with
          | Event.Inv (q, Event.Read x) when q = p && not (Hashtbl.mem own (p, x))
            ->
              eligible := (i, v) :: !eligible
          | _ -> ())
      | Event.Inv _ | Event.Res _ -> ())
    es;
  match !eligible with
  | [] -> None
  | choices ->
      let i, v = List.nth choices (Rng.int g (List.length choices)) in
      es.(i) <- Event.Res (Event.proc es.(i), Event.Value (v + 1));
      Some (History.of_events (Array.to_list es))
