(** Finite histories of a TM implementation (Section 2.2 of the paper).

    A history is a finite sequence of events over the alphabet
    [Inv ∪ Res].  A history is {e well-formed} when, for every process
    [pk], the projection [H|pk] is a word of [Σ∞k]: invocations and
    responses of [pk] strictly alternate, starting with an invocation, and
    every response matches the kind of the pending invocation (a read
    returns a value or [A]; a write returns [ok] or [A]; [tryC] returns
    [C] or [A]).

    Values of this type are immutable; [append] is O(1). *)

type t

val empty : t

val of_events : Event.t list -> t
(** [of_events es] is the history whose event sequence is [es].  No
    well-formedness check is performed; see {!well_formed}. *)

val events : t -> Event.t list
(** The event sequence, in order. *)

val length : t -> int

val append : t -> Event.t -> t
(** [append h e] is [h] extended with a last event [e]. *)

val concat : t -> Event.t list -> t
(** [concat h es] appends all events of [es] to [h], in order. *)

val nth : t -> int -> Event.t
(** [nth h i] is the [i]-th event (0-based).  @raise Invalid_argument if out
    of bounds. *)

val project : t -> Event.proc -> Event.t list
(** [project h p] is the projection [H|p]: the longest subsequence of [h]
    consisting of events of process [p]. *)

val procs : t -> Event.proc list
(** Processes having at least one event in the history, in ascending
    order. *)

val tvars : t -> Event.tvar list
(** T-variables accessed by at least one invocation, ascending. *)

val well_formed : t -> (unit, string) result
(** [well_formed h] is [Ok ()] iff every projection [H|pk] lies in [Σ∞k];
    otherwise [Error msg] describes the first offending event. *)

val is_well_formed : t -> bool

val equivalent : t -> t -> bool
(** [equivalent h h'] holds iff [H|pk = H'|pk] for every process [pk]
    (the paper's history equivalence). *)

val complete : t -> t
(** [complete h] is the completion [com(H)]: every transaction that is
    neither committed nor aborted is aborted by appending events at the end
    of the history.  If a process has a pending invocation, a single abort
    response is appended for it; if its last transaction ended with a
    (non-[C]/[A]) response, a [tryC] invocation immediately answered by [A]
    is appended, keeping the result well-formed. *)

val is_complete : t -> bool
(** [is_complete h] holds iff [complete h] = [h] (up to event equality). *)

val commit_count : t -> Event.proc -> int
(** Number of commit events [C_k] of the given process. *)

val abort_count : t -> Event.proc -> int
val try_commit_count : t -> Event.proc -> int
val event_count : t -> Event.proc -> int

val equal : t -> t -> bool
(** Event-by-event equality. *)

val pp : Format.formatter -> t -> unit
(** One event per [;]-separated item, in the paper's linear notation. *)

val pp_events : Format.formatter -> Event.t list -> unit

(** {2 Builders}

    Convenience constructors for writing down histories in the style of the
    paper's figures.  Each returns the event list of one completed step. *)

val read : Event.proc -> Event.tvar -> Event.value -> Event.t list
(** [read p x v] is [x.read_p · v_p]: a read of [x] returning [v]. *)

val read_aborted : Event.proc -> Event.tvar -> Event.t list
(** A read invocation answered by [A_p]. *)

val write : Event.proc -> Event.tvar -> Event.value -> Event.t list
(** [write p x v] is [x.write_p(v) · ok_p]. *)

val write_aborted : Event.proc -> Event.tvar -> Event.value -> Event.t list

val commit : Event.proc -> Event.t list
(** [commit p] is [tryC_p · C_p]. *)

val abort : Event.proc -> Event.t list
(** [abort p] is [tryC_p · A_p]. *)

val steps : Event.t list list -> t
(** [steps xs] is the history made of the concatenation of the given
    steps. *)
