let op_token = function
  | Event.Inv (_, Event.Read x) -> Fmt.str "x%d.r" x
  | Event.Inv (_, Event.Write (x, v)) -> Fmt.str "x%d.w(%d)" x v
  | Event.Inv (_, Event.Try_commit) -> "tryC"
  | Event.Res (_, Event.Value v) -> Fmt.str "->%d" v
  | Event.Res (_, Event.Ok_written) -> "ok"
  | Event.Res (_, Event.Committed) -> "C"
  | Event.Res (_, Event.Aborted) -> "A"

(* Group one process's events into transaction chunks, fusing each
   invocation with its response into a single readable token such as
   "x0.r->0" or "x0.w(1):A". *)
let transaction_tokens events =
  let rec fuse = function
    | [] -> []
    | Event.Inv (_, i) :: Event.Res (_, r) :: rest ->
        let tok =
          match (i, r) with
          | Event.Read x, Event.Value v -> Fmt.str "x%d.r->%d" x v
          | Event.Write (x, v), Event.Ok_written -> Fmt.str "x%d.w(%d)" x v
          | Event.Try_commit, Event.Committed -> "C"
          | Event.Try_commit, Event.Aborted -> "A"
          | _, Event.Aborted -> Fmt.str "%s:A" (op_token (Event.Inv (0, i)))
          | _, _ -> Fmt.str "%s%s" (op_token (Event.Inv (0, i)))
                      (op_token (Event.Res (0, r)))
        in
        tok :: fuse rest
    | e :: rest -> (op_token e ^ "?") :: fuse rest
  in
  let ends_transaction tok =
    tok = "C" || tok = "A"
    || (String.length tok >= 2
        && String.sub tok (String.length tok - 2) 2 = ":A")
  in
  let rec split current acc = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | tok :: rest ->
        if ends_transaction tok then
          split [] (List.rev (tok :: current) :: acc) rest
        else split (tok :: current) acc rest
  in
  split [] [] (fuse events)

let pp_process_row ppf (p, events) =
  let txns = transaction_tokens events in
  let pp_txn ppf toks = Fmt.pf ppf "[%s]" (String.concat " " toks) in
  Fmt.pf ppf "p%d: %a" p Fmt.(list ~sep:(any " ") pp_txn) txns

let pp_by_process ppf h =
  let rows = List.map (fun p -> (p, History.project h p)) (History.procs h) in
  Fmt.pf ppf "@[<v>%a@]@."
    Fmt.(list ~sep:(any "@,") pp_process_row)
    rows

let pp_timeline ppf h =
  let es = History.events h in
  let ps = History.procs h in
  let tokens = Array.of_list (List.map op_token es) in
  let widths = Array.map String.length tokens in
  let row p =
    let buf = Buffer.create 128 in
    List.iteri
      (fun i e ->
        let w = widths.(i) in
        let cell = if Event.proc e = p then tokens.(i) else "" in
        Buffer.add_string buf (Printf.sprintf "%-*s " w cell))
      es;
    Buffer.contents buf
  in
  List.iter (fun p -> Fmt.pf ppf "p%d | %s@," p (row p)) ps

let pp_lasso ppf (l : Lasso.t) =
  let stem_h = History.of_events l.stem in
  let cyc_h = History.of_events l.cycle in
  Fmt.pf ppf "@[<v>stem:@,%acycle (repeats forever):@,%a@]" pp_by_process
    stem_h pp_by_process cyc_h
