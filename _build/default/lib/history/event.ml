type proc = int
type tvar = int
type value = int

type invocation = Read of tvar | Write of tvar * value | Try_commit
type response = Value of value | Ok_written | Committed | Aborted
type t = Inv of proc * invocation | Res of proc * response

let proc = function Inv (p, _) | Res (p, _) -> p

let is_invocation = function Inv _ -> true | Res _ -> false
let is_response = function Res _ -> true | Inv _ -> false

let is_commit = function Res (_, Committed) -> true | Inv _ | Res _ -> false
let is_abort = function Res (_, Aborted) -> true | Inv _ | Res _ -> false

let is_try_commit = function
  | Inv (_, Try_commit) -> true
  | Inv _ | Res _ -> false

let matches inv res =
  match (inv, res) with
  | Read _, (Value _ | Aborted) -> true
  | Read _, (Ok_written | Committed) -> false
  | Write _, (Ok_written | Aborted) -> true
  | Write _, (Value _ | Committed) -> false
  | Try_commit, (Committed | Aborted) -> true
  | Try_commit, (Value _ | Ok_written) -> false

let tvar_of_invocation = function
  | Read x | Write (x, _) -> Some x
  | Try_commit -> None

let equal_invocation a b =
  match (a, b) with
  | Read x, Read y -> x = y
  | Write (x, v), Write (y, w) -> x = y && v = w
  | Try_commit, Try_commit -> true
  | (Read _ | Write _ | Try_commit), _ -> false

let equal_response a b =
  match (a, b) with
  | Value v, Value w -> v = w
  | Ok_written, Ok_written | Committed, Committed | Aborted, Aborted -> true
  | (Value _ | Ok_written | Committed | Aborted), _ -> false

let equal a b =
  match (a, b) with
  | Inv (p, i), Inv (q, j) -> p = q && equal_invocation i j
  | Res (p, r), Res (q, s) -> p = q && equal_response r s
  | (Inv _ | Res _), _ -> false

let compare = Stdlib.compare

let pp_invocation ppf = function
  | Read x -> Fmt.pf ppf "x%d.read" x
  | Write (x, v) -> Fmt.pf ppf "x%d.write(%d)" x v
  | Try_commit -> Fmt.pf ppf "tryC"

let pp_response ppf = function
  | Value v -> Fmt.pf ppf "%d" v
  | Ok_written -> Fmt.pf ppf "ok"
  | Committed -> Fmt.pf ppf "C"
  | Aborted -> Fmt.pf ppf "A"

let pp ppf = function
  | Inv (p, i) -> Fmt.pf ppf "%a_%d" pp_invocation i p
  | Res (p, r) -> Fmt.pf ppf "%a_%d" pp_response r p

let to_string e = Fmt.str "%a" pp e
