(** Every history figure of the paper, encoded as a value.

    The test suite re-derives each figure's verdict as claimed by the paper
    (see the per-figure documentation below and EXPERIMENTS.md).  Finite
    histories are {!History.t}; infinite ones are {!Lasso.t}.

    Conventions: the single t-variable of Figures 1 and 3–14 is [x = 0];
    Figure 16 uses [x = 0] and [y = 1].  All t-variables initially hold 0. *)

val fig1 : History.t
(** Figure 1: p1 reads 0 from [x] and is suspended; p2 reads 0, writes 1 and
    commits; p1 then tries to write and is aborted.  The paper states this
    history is {e opaque} (and hence strictly serializable).  Its infinite
    repetition is what the Theorem-1 adversary produces. *)

val fig3 : History.t
(** Figure 3: both p1 and p2 read 0 from [x], write 1, and commit.  Neither
    opaque nor strictly serializable. *)

val fig4 : History.t
(** Figure 4: p1 reads 0; p2 writes 1 and commits; p1 reads 1 and aborts.
    Strictly serializable but not opaque. *)

val fig5 : Lasso.t
(** Figure 5: two processes alternately commit (and abort) transactions
    forever; both make progress.  Ensures local progress (hence global and
    solo progress); respects nonblocking and biprogressing. *)

val fig6 : Lasso.t
(** Figure 6: p1 commits forever, p2 aborts forever; both correct.  Ensures
    global progress but not local progress; does not respect any
    biprogressing property. *)

val fig7 : Lasso.t
(** Figure 7: p1 crashes after one read; p2 becomes parasitic in its second
    transaction; p3 runs alone and commits forever.  Ensures solo
    progress. *)

val fig8 : v:Event.value -> History.t
(** Figure 8 (= Figure 11): the suffix of a finite history corresponding to
    a terminating execution of Algorithm 1 (Algorithm 2): both processes
    read [v], write [v+1] and commit.  Not opaque — this is the core of the
    impossibility proof.  Figure 3 is the [v = 0] instance. *)

val fig9 : Lasso.t
(** Figure 9: suffix of an Algorithm-1 execution in which p1 crashes and p2
    is aborted forever.  p2 is correct and starving: local progress is
    violated. *)

val fig10 : Lasso.t
(** Figure 10: suffix of an Algorithm-1 execution in which p1 does not
    crash: p1 is aborted forever while p2 commits forever.  p1 is correct
    and starving: local progress is violated. *)

val fig12 : Lasso.t
(** Figure 12: suffix of an Algorithm-2 execution in which p1 is parasitic
    (reads forever, never attempts to commit) and p2 is aborted forever.
    p2 is correct and starving. *)

val fig13 : Lasso.t
(** Figure 13: suffix of an Algorithm-2 execution in which p1 is not
    parasitic: p1 is aborted forever while p2 commits forever.  Same shape
    as Figure 10. *)

val fig14 : Lasso.t
(** Figure 14: p1 crashes, p2 is parasitic, and p3 — which runs alone —
    aborts forever.  Does not respect any nonblocking TM-liveness property.

    Encoding note: the paper's drawing lets p3 read alternating values even
    though no process commits after the prefix; we encode the
    opacity-consistent variant in which p3 always reads the last committed
    value (1).  The liveness verdicts, which are all that Figure 14 is used
    for, are identical. *)

val fig16 : History.t
(** Figure 16: the example history [Hex] of the global-progress automaton
    [Fgp] with three processes and two t-variables.  Opaque; replayable on
    our [Fgp] implementation step for step (see the adversary/simulation
    tests). *)

val all_finite : (string * History.t) list
(** All finite figures with their names, for iteration in tests/benches. *)

val all_lassos : (string * Lasso.t) list
