(** Events of the transactional-memory model (Section 2.2 of the paper).

    Processes communicate with a TM implementation by issuing {e invocation
    events} (reads and writes on t-variables, and commit requests [tryC]) and
    receiving {e response events} (read values, write acknowledgements, commit
    events [C] and abort events [A]).

    Following the paper, processes, t-variables and values are drawn from
    countable sets; we represent all three by non-negative integers.  Process
    identifiers are 1-based (the paper writes p1, p2, ...); t-variable
    identifiers and values are 0-based, and every t-variable initially holds
    the value [0] (as in all of the paper's figures). *)

type proc = int
(** A process identifier [pk], [k >= 1]. *)

type tvar = int
(** A t-variable identifier [x], [x >= 0]. *)

type value = int
(** A value [v] stored in a t-variable. *)

(** An invocation event of some process: the set [Inv_k] of the paper. *)
type invocation =
  | Read of tvar  (** [x.read_k] *)
  | Write of tvar * value  (** [x.write_k (v)] *)
  | Try_commit  (** [tryC_k] *)

(** A response event of some process: the set [Res_k] of the paper. *)
type response =
  | Value of value  (** [v_k]: the value returned by a read *)
  | Ok_written  (** [ok_k]: acknowledgement of a write *)
  | Committed  (** [C_k]: a commit event *)
  | Aborted  (** [A_k]: an abort event *)

(** An event: an invocation or a response, tagged by its process. *)
type t = Inv of proc * invocation | Res of proc * response

val proc : t -> proc
(** [proc e] is the process that issued or received [e]. *)

val is_invocation : t -> bool
val is_response : t -> bool

val is_commit : t -> bool
(** [is_commit e] holds iff [e] is a commit event [C_k] for some [k]. *)

val is_abort : t -> bool
(** [is_abort e] holds iff [e] is an abort event [A_k] for some [k]. *)

val is_try_commit : t -> bool
(** [is_try_commit e] holds iff [e] is an invocation [tryC_k] for some [k]. *)

val matches : invocation -> response -> bool
(** [matches inv res] holds iff [res] is a well-formed response to [inv]
    according to the alphabet [Sigma_k] of the paper: a read may return a
    value or [A]; a write may return [ok] or [A]; [tryC] may return [C] or
    [A]. *)

val tvar_of_invocation : invocation -> tvar option
(** The t-variable accessed by an invocation, if any ([None] for [tryC]). *)

val equal : t -> t -> bool
val equal_invocation : invocation -> invocation -> bool
val equal_response : response -> response -> bool
val compare : t -> t -> int

val pp_invocation : Format.formatter -> invocation -> unit
val pp_response : Format.formatter -> response -> unit

val pp : Format.formatter -> t -> unit
(** Prints in the paper's notation, e.g. [x0.read_1], [1_2], [C_1], [A_2]. *)

val to_string : t -> string
