lib/history/pretty.mli: Event Format History Lasso
