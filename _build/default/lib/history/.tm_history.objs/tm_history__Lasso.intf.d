lib/history/lasso.mli: Event Format History
