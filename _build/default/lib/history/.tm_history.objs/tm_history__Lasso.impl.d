lib/history/lasso.ml: Event Fmt Hashtbl History Int List
