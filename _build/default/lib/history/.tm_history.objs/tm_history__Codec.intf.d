lib/history/codec.mli: Event History Lasso
