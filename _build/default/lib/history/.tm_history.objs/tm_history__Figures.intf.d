lib/history/figures.mli: Event History Lasso
