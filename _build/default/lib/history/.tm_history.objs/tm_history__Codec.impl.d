lib/history/codec.ml: Event History Lasso List Printf String
