lib/history/generator.ml: Array Event Hashtbl History Int64 Lasso List
