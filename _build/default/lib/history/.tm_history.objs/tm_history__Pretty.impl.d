lib/history/pretty.ml: Array Buffer Event Fmt History Lasso List Printf String
