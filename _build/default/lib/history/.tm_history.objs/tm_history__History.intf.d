lib/history/history.mli: Event Format
