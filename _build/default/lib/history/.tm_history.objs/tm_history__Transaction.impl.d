lib/history/transaction.ml: Event Fmt History Int List
