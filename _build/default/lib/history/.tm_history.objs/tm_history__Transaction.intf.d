lib/history/transaction.mli: Event Format History
