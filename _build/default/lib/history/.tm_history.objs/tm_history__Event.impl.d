lib/history/event.ml: Fmt Stdlib
