lib/history/history.ml: Event Fmt Hashtbl Int List Result
