lib/history/event.mli: Format
