lib/history/generator.mli: History Lasso
