lib/history/figures.ml: Event History Lasso List
