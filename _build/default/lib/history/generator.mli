(** Random histories and lassos, for fuzzing TMs and checkers.

    Deterministic: every generator takes an explicit [seed].  These are the
    same generators the test suite uses; they are exposed so downstream
    users can fuzz their own TM implementations and checkers (see
    [examples/custom_tm.ml]).

    - {!well_formed} draws an arbitrary well-formed history: invocations
      and responses alternate per process, response kinds match, but
      values are arbitrary — most draws are {e not} opaque.  Useful for
      exercising checkers.
    - {!serial} draws a faithful serial execution against a store: whole
      transactions run one at a time, reads return true values, aborted
      transactions have no effect.  Always opaque.  Useful as a
      positive-control corpus and as a base for mutation.
    - {!lasso} draws a well-formed lasso whose cycle is made of completed
      operation pairs. *)

type config = {
  nprocs : int;  (** processes 1..nprocs *)
  ntvars : int;  (** t-variables 0..ntvars-1 *)
  max_value : int;  (** values drawn from 0..max_value *)
}

val default : config
(** 3 processes, 3 t-variables, values up to 5. *)

val well_formed : ?config:config -> steps:int -> int -> History.t
(** [well_formed ~steps seed]: approximately [steps] events. *)

val serial : ?config:config -> transactions:int -> int -> History.t

val lasso : ?config:config -> int -> Lasso.t

val mutate_read : History.t -> int -> History.t option
(** Corrupt one read response (adding one to its value) chosen by the
    seed, avoiding reads shadowed by the transaction's own writes.  [None]
    if the history has no eligible read.  Mutating a {!serial} history
    always yields a non-opaque one. *)
