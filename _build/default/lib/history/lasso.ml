type t = { stem : Event.t list; cycle : Event.t list }

(* The per-process pending-invocation state after a finite prefix; two
   prefixes with equal state accept exactly the same continuations. *)
let state_after es =
  let pending = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match e with
      | Event.Inv (p, i) -> Hashtbl.replace pending p i
      | Event.Res (p, _) -> Hashtbl.remove pending p)
    es;
  Hashtbl.fold (fun p i acc -> (p, i) :: acc) pending []
  |> List.sort (fun (p, _) (q, _) -> Int.compare p q)

let check ~stem ~cycle =
  if cycle = [] then Error "lasso cycle must be non-empty"
  else
    let h1 = History.of_events (stem @ cycle) in
    let h2 = History.of_events (stem @ cycle @ cycle) in
    match History.well_formed h2 with
    | Error m -> Error ("lasso unrolling ill-formed: " ^ m)
    | Ok () ->
        if state_after (History.events h1) = state_after (History.events h2)
        then Ok { stem; cycle }
        else
          Error
            "pending-invocation state does not repeat after the cycle; the \
             infinite unrolling would be ill-formed"

let v ~stem ~cycle =
  match check ~stem ~cycle with
  | Ok l -> l
  | Error m -> invalid_arg ("Lasso.v: " ^ m)

let unroll l n =
  let rec cycles acc n = if n <= 0 then acc else cycles (acc @ l.cycle) (n - 1) in
  History.of_events (cycles l.stem n)

let rotate l =
  match l.cycle with
  | [] -> assert false
  | e :: rest -> { stem = l.stem @ [ e ]; cycle = rest @ [ e ] }

let unroll_cycle_into_stem l = { l with stem = l.stem @ l.cycle }

let procs l =
  List.sort_uniq Int.compare (List.map Event.proc (l.stem @ l.cycle))

let projection_infinite l p = List.exists (fun e -> Event.proc e = p) l.cycle

let infinitely_many l pred p =
  List.exists (fun e -> Event.proc e = p && pred e) l.cycle

let finite_count l pred p =
  List.length (List.filter (fun e -> Event.proc e = p && pred e) l.stem)

let pp ppf l =
  Fmt.pf ppf "@[<v>stem:  @[%a@]@,cycle: @[%a@]@]" History.pp_events l.stem
    History.pp_events l.cycle
