type t = { rev : Event.t list; len : int }

let empty = { rev = []; len = 0 }

let of_events es = { rev = List.rev es; len = List.length es }
let events h = List.rev h.rev
let length h = h.len

let append h e = { rev = e :: h.rev; len = h.len + 1 }
let concat h es = List.fold_left append h es

let nth h i =
  if i < 0 || i >= h.len then invalid_arg "History.nth"
  else List.nth h.rev (h.len - 1 - i)

let project h p = List.filter (fun e -> Event.proc e = p) (events h)

let sorted_uniq xs = List.sort_uniq Int.compare xs

let procs h = sorted_uniq (List.map Event.proc (events h))

let tvars h =
  let tvar = function
    | Event.Inv (_, i) -> Event.tvar_of_invocation i
    | Event.Res _ -> None
  in
  sorted_uniq (List.filter_map tvar (events h))

(* Per-process pending invocation, threaded through a left-to-right scan. *)
let scan_well_formed es =
  let pending : (Event.proc, Event.invocation) Hashtbl.t = Hashtbl.create 8 in
  let check e =
    match e with
    | Event.Inv (p, i) -> (
        match Hashtbl.find_opt pending p with
        | Some _ ->
            Error
              (Fmt.str "event %a: process %d already has a pending invocation"
                 Event.pp e p)
        | None ->
            Hashtbl.replace pending p i;
            Ok ())
    | Event.Res (p, r) -> (
        match Hashtbl.find_opt pending p with
        | None ->
            Error
              (Fmt.str "event %a: process %d has no pending invocation"
                 Event.pp e p)
        | Some i ->
            if Event.matches i r then (
              Hashtbl.remove pending p;
              Ok ())
            else
              Error
                (Fmt.str "event %a: response does not match invocation %a"
                   Event.pp e Event.pp_invocation i))
  in
  let rec go = function
    | [] -> Ok pending
    | e :: rest -> ( match check e with Ok () -> go rest | Error m -> Error m)
  in
  go es

let well_formed h =
  match scan_well_formed (events h) with Ok _ -> Ok () | Error m -> Error m

let is_well_formed h = Result.is_ok (well_formed h)

let equivalent h h' =
  let ps = sorted_uniq (procs h @ procs h') in
  List.for_all
    (fun p -> List.equal Event.equal (project h p) (project h' p))
    ps

(* A process has a live transaction iff its projection has at least one
   event after the last commit or abort response. *)
let live_state h p =
  let es = project h p in
  let rec last_events acc = function
    | [] -> acc
    | e :: rest ->
        if Event.is_commit e || Event.is_abort e then last_events [] rest
        else last_events (e :: acc) rest
  in
  match last_events [] es with
  | [] -> `No_live
  | e :: _ -> (
      (* [e] is the last event of the live transaction (list was reversed
         by accumulation). *)
      match e with
      | Event.Inv (_, i) -> `Pending_invocation i
      | Event.Res _ -> `Between_operations)

let complete h =
  let close p =
    match live_state h p with
    | `No_live -> []
    | `Pending_invocation _ -> [ Event.Res (p, Event.Aborted) ]
    | `Between_operations ->
        [ Event.Inv (p, Event.Try_commit); Event.Res (p, Event.Aborted) ]
  in
  concat h (List.concat_map close (procs h))

let equal h h' = List.equal Event.equal (events h) (events h')

let is_complete h = equal (complete h) h

let count pred h p =
  List.length (List.filter (fun e -> Event.proc e = p && pred e) (events h))

let commit_count = count Event.is_commit
let abort_count = count Event.is_abort
let try_commit_count = count Event.is_try_commit
let event_count h p = List.length (project h p)

let pp_events ppf es = Fmt.(list ~sep:(any ";@ ") Event.pp) ppf es
let pp ppf h = pp_events ppf (events h)

let read p x v = [ Event.Inv (p, Event.Read x); Event.Res (p, Event.Value v) ]
let read_aborted p x = [ Event.Inv (p, Event.Read x); Event.Res (p, Event.Aborted) ]

let write p x v =
  [ Event.Inv (p, Event.Write (x, v)); Event.Res (p, Event.Ok_written) ]

let write_aborted p x v =
  [ Event.Inv (p, Event.Write (x, v)); Event.Res (p, Event.Aborted) ]

let commit p = [ Event.Inv (p, Event.Try_commit); Event.Res (p, Event.Committed) ]
let abort p = [ Event.Inv (p, Event.Try_commit); Event.Res (p, Event.Aborted) ]

let steps xs = of_events (List.concat xs)
