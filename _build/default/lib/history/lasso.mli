(** Ultimately periodic infinite histories.

    The paper's liveness definitions quantify over {e infinite} histories.
    Every infinite history depicted in the paper (Figures 5, 6, 7, 14, and
    the adversary outcomes of Figures 9, 10, 12, 13) is ultimately periodic,
    i.e. of the form [stem · cycle^ω] for finite event sequences [stem] and
    [cycle].  Representing them as such "lassos" makes all liveness verdicts
    exactly decidable: a process has infinitely many events of some kind iff
    the cycle contains one.

    A lasso is well-formed when every finite unrolling [stem · cycle^n] is a
    well-formed history; because per-process alternation state is a function
    of the prefix, it suffices that [stem · cycle · cycle] is well-formed and
    that the pending-invocation state repeats after each cycle. *)

type t = private { stem : Event.t list; cycle : Event.t list }

val v : stem:Event.t list -> cycle:Event.t list -> t
(** @raise Invalid_argument if [cycle] is empty or the lasso is not
    well-formed. *)

val check : stem:Event.t list -> cycle:Event.t list -> (t, string) result

val unroll : t -> int -> History.t
(** [unroll l n] is the finite history [stem · cycle^n]. *)

val rotate : t -> t
(** [rotate l] denotes the same infinite history with the first cycle event
    moved into the stem (so [stem'] = [stem @ [e]] and [cycle'] is the cycle
    rotated by one).  Liveness verdicts are invariant under rotation. *)

val unroll_cycle_into_stem : t -> t
(** The same infinite history with one full cycle appended to the stem. *)

val procs : t -> Event.proc list
(** Processes with at least one event in [stem · cycle]. *)

val projection_infinite : t -> Event.proc -> bool
(** [projection_infinite l p] holds iff [H|p] is infinite, i.e. the cycle
    contains an event of [p]. *)

val infinitely_many : t -> (Event.t -> bool) -> Event.proc -> bool
(** [infinitely_many l pred p] holds iff infinitely many events of process
    [p] satisfy [pred], i.e. some cycle event of [p] does. *)

val finite_count : t -> (Event.t -> bool) -> Event.proc -> int
(** Number of matching stem events of [p] (meaningful when
    [infinitely_many] is false). *)

val pp : Format.formatter -> t -> unit
