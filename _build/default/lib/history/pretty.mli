(** Rendering histories in the style of the paper's figures.

    The paper draws a history as one row per process, time flowing left to
    right, with each transaction's operations grouped between brackets.
    {!pp_by_process} reproduces that layout (without column alignment);
    {!pp_timeline} additionally aligns events on their global positions so
    that the interleaving is visible, which is the closest textual analogue
    of the paper's figures. *)

val op_token : Event.t -> string
(** A compact token for one event: [x0.r], [->1], [x0.w(1)], [ok], [tryC],
    [C], [A]. *)

val pp_by_process : Format.formatter -> History.t -> unit
(** One row per process; each transaction rendered as
    [\[x0.r->0 x0.w(1) C\]]. *)

val pp_timeline : Format.formatter -> History.t -> unit
(** One row per process, events aligned in global-order columns. *)

val pp_lasso : Format.formatter -> Lasso.t -> unit
(** Renders [stem] and [cycle] with {!pp_by_process}-style rows, marking the
    cycle part as repeating. *)
