(** Transactions of a history (Section 2.2 of the paper).

    A transaction of process [pk] in history [H] is a maximal subsequence of
    [H|pk] that contains no commit or abort event except possibly as its last
    event.  A transaction is {e committed} ({e aborted}) if its last event is
    a commit (abort) event, and {e live} otherwise.

    Each extracted transaction carries the global positions of its first and
    last events in [H], from which the real-time order [<H] is derived:
    [T1 <H T2] iff [T1] is committed or aborted and the last event of [T1]
    occurs before the first event of [T2].  Two transactions neither of which
    precedes the other are {e concurrent}. *)

type status = Committed | Aborted | Live

type op =
  | O_read of Event.tvar * Event.value
      (** a completed read: [x.read · v] *)
  | O_write of Event.tvar * Event.value
      (** a completed write: [x.write(v) · ok] *)

type t = {
  proc : Event.proc;
  seq : int;  (** 0-based index among this process's transactions *)
  first_pos : int;  (** global index in the history of the first event *)
  last_pos : int;  (** global index in the history of the last event *)
  events : Event.t list;
  ops : op list;  (** completed reads and writes, in order *)
  status : status;
  attempted_commit : bool;  (** the transaction invoked [tryC] *)
}

val of_history : History.t -> t list
(** All transactions of the history, ordered by [first_pos].  Assumes the
    history is well-formed. *)

val of_process : History.t -> Event.proc -> t list
(** Transactions of one process, in program order. *)

val precedes : t -> t -> bool
(** The real-time order [<H]. *)

val concurrent : t -> t -> bool

val is_committed : t -> bool
val is_aborted : t -> bool
val is_live : t -> bool

val commit_pending : t -> bool
(** [commit_pending t] holds iff [t] is live and its last event is a
    pending [tryC] invocation: the process asked to commit and the history
    ends before the response.  Such a transaction's fate is ambiguous — the
    TM may already have made its writes take effect (e.g. a helped commit,
    or a crash after write-back) — so safety checkers must consider both
    completions. *)

val completed_as : status -> t -> t
(** [completed_as status t] is [t] with its status forced to [status] and
    its completion placed at the end of the history ([last_pos] becomes
    [max_int], so it real-time-precedes nothing), mirroring how [com(H)]
    appends completion events.  Meaningful for live transactions. *)

val reads : t -> (Event.tvar * Event.value) list
val writes : t -> (Event.tvar * Event.value) list

val write_set : t -> Event.tvar list
(** T-variables written by completed writes, deduplicated, ascending. *)

val last_write : t -> Event.tvar -> Event.value option
(** Value of the transaction's last completed write to the given t-variable,
    if any. *)

val label : t -> string
(** A short label such as ["T1.0"] (process 1, first transaction). *)

val pp : Format.formatter -> t -> unit
val pp_status : Format.formatter -> status -> unit
