type status = Committed | Aborted | Live

type op =
  | O_read of Event.tvar * Event.value
  | O_write of Event.tvar * Event.value

type t = {
  proc : Event.proc;
  seq : int;
  first_pos : int;
  last_pos : int;
  events : Event.t list;
  ops : op list;
  status : status;
  attempted_commit : bool;
}

(* Extract the completed operations from a transaction's event list by
   pairing each invocation with the response that follows it. *)
let ops_of_events events =
  let rec go acc = function
    | [] -> List.rev acc
    | Event.Inv (_, Event.Read x) :: Event.Res (_, Event.Value v) :: rest ->
        go (O_read (x, v) :: acc) rest
    | Event.Inv (_, Event.Write (x, v)) :: Event.Res (_, Event.Ok_written)
      :: rest ->
        go (O_write (x, v) :: acc) rest
    | _ :: rest -> go acc rest
  in
  go [] events

let status_of_events events =
  match List.rev events with
  | Event.Res (_, Event.Committed) :: _ -> Committed
  | Event.Res (_, Event.Aborted) :: _ -> Aborted
  | _ -> Live

let attempted events = List.exists Event.is_try_commit events

(* Split the indexed projection of one process into transactions.  Each
   element of the input is [(global_pos, event)]. *)
let split_transactions proc indexed =
  let finish seq acc_rev =
    match acc_rev with
    | [] -> None
    | (last_pos, _) :: _ ->
        let evs = List.rev acc_rev in
        let events = List.map snd evs in
        let first_pos =
          match evs with (i, _) :: _ -> i | [] -> assert false
        in
        Some
          {
            proc;
            seq;
            first_pos;
            last_pos;
            events;
            ops = ops_of_events events;
            status = status_of_events events;
            attempted_commit = attempted events;
          }
  in
  let rec go seq acc_rev out = function
    | [] -> (
        match finish seq acc_rev with
        | None -> List.rev out
        | Some txn -> List.rev (txn :: out))
    | ((_, e) as ie) :: rest ->
        if Event.is_commit e || Event.is_abort e then
          match finish seq (ie :: acc_rev) with
          | None -> go seq [] out rest
          | Some txn -> go (seq + 1) [] (txn :: out) rest
        else go seq (ie :: acc_rev) out rest
  in
  go 0 [] [] indexed

let of_process h proc =
  let indexed =
    History.events h
    |> List.mapi (fun i e -> (i, e))
    |> List.filter (fun (_, e) -> Event.proc e = proc)
  in
  split_transactions proc indexed

let of_history h =
  let all = List.concat_map (of_process h) (History.procs h) in
  List.sort (fun a b -> Int.compare a.first_pos b.first_pos) all

let is_committed t = t.status = Committed
let is_aborted t = t.status = Aborted
let is_live t = t.status = Live

let commit_pending t =
  t.status = Live
  &&
  match List.rev t.events with
  | Event.Inv (_, Event.Try_commit) :: _ -> true
  | _ -> false

let completed_as status t = { t with status; last_pos = max_int }

let precedes t1 t2 =
  (match t1.status with Committed | Aborted -> true | Live -> false)
  && t1.last_pos < t2.first_pos

let concurrent t1 t2 = (not (precedes t1 t2)) && not (precedes t2 t1)

let reads t =
  List.filter_map
    (function O_read (x, v) -> Some (x, v) | O_write _ -> None)
    t.ops

let writes t =
  List.filter_map
    (function O_write (x, v) -> Some (x, v) | O_read _ -> None)
    t.ops

let write_set t = List.sort_uniq Int.compare (List.map fst (writes t))

let last_write t x =
  List.fold_left
    (fun acc -> function
      | O_write (y, v) when y = x -> Some v
      | O_write _ | O_read _ -> acc)
    None t.ops

let label t = Fmt.str "T%d.%d" t.proc t.seq

let pp_status ppf = function
  | Committed -> Fmt.string ppf "committed"
  | Aborted -> Fmt.string ppf "aborted"
  | Live -> Fmt.string ppf "live"

let pp ppf t =
  Fmt.pf ppf "@[<h>%s[%a] %a@]" (label t) pp_status t.status
    History.pp_events t.events
