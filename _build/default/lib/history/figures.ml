let x = 0
let y = 1

(* Shorthand: H.read / H.write / ... produce [inv; res] pairs. *)
module H = History

let fig1 =
  H.steps
    [
      H.read 1 x 0;
      H.read 2 x 0;
      H.write 2 x 1;
      H.commit 2;
      H.write_aborted 1 x 1;
    ]

let fig3 =
  H.steps
    [
      H.read 1 x 0;
      H.read 2 x 0;
      H.write 2 x 1;
      H.commit 2;
      H.write 1 x 1;
      H.commit 1;
    ]

let fig4 =
  H.steps [ H.read 1 x 0; H.write 2 x 1; H.commit 2; H.read 1 x 1; H.abort 1 ]

let fig5 =
  (* One cycle: p1 commits a 0->1 round while p2 aborts, then p2 commits a
     1->0 round while p1 aborts; the t-variable returns to 0 so the cycle
     repeats forever. *)
  Lasso.v ~stem:[]
    ~cycle:
      (List.concat
         [
           H.read 1 x 0;
           H.read 2 x 0;
           H.write 1 x 1;
           H.commit 1;
           H.write_aborted 2 x 1;
           H.read 2 x 1;
           H.read 1 x 1;
           H.write 2 x 0;
           H.commit 2;
           H.write_aborted 1 x 0;
         ])

let fig6 =
  (* p1 commits forever; p2 is aborted forever (but keeps trying, so it is
     correct). Two rounds per cycle so the t-variable returns to 0. *)
  Lasso.v ~stem:[]
    ~cycle:
      (List.concat
         [
           H.read 1 x 0;
           H.read 2 x 0;
           H.write 1 x 1;
           H.commit 1;
           H.write_aborted 2 x 1;
           H.read 1 x 1;
           H.read 2 x 1;
           H.write 1 x 0;
           H.commit 1;
           H.write_aborted 2 x 0;
         ])

let fig7 =
  (* p1 reads 0 then crashes; p2 commits one transaction then turns
     parasitic (keeps reading/writing, never invokes tryC, never aborted);
     p3 commits forever. *)
  Lasso.v
    ~stem:
      (List.concat
         [
           H.read 1 x 0;
           H.write 2 x 1;
           H.commit 2;
           H.read 2 x 1 (* p2's parasitic transaction starts *);
         ])
    ~cycle:
      (List.concat
         [
           H.read 3 x 1;
           H.write 3 x 0;
           H.commit 3;
           H.write 2 x 0;
           H.read 2 x 0;
           H.read 3 x 0;
           H.write 3 x 1;
           H.commit 3;
           H.write 2 x 1;
           H.read 2 x 1;
         ])

let fig8 ~v =
  H.steps
    [
      H.read 1 x v;
      H.read 2 x v;
      H.write 2 x (v + 1);
      H.commit 2;
      H.write 1 x (v + 1);
      H.commit 1;
    ]

let fig9 =
  Lasso.v ~stem:(H.read 1 x 0) ~cycle:(H.read_aborted 2 x)

let fig10 =
  Lasso.v ~stem:[]
    ~cycle:
      (List.concat
         [
           H.read 1 x 0;
           H.read 2 x 0;
           H.write 2 x 1;
           H.commit 2;
           H.write_aborted 1 x 1;
           H.read 1 x 1;
           H.read 2 x 1;
           H.write 2 x 0;
           H.commit 2;
           H.write_aborted 1 x 0;
         ])

let fig12 =
  (* p1 reads forever without ever attempting to commit (parasitic); p2 is
     aborted forever (correct, starving). *)
  Lasso.v ~stem:[] ~cycle:(List.concat [ H.read 1 x 0; H.read_aborted 2 x ])

let fig13 = fig10

let fig14 =
  (* Like Figure 7 but p3 aborts forever: nobody makes progress even though
     p3 runs alone. *)
  Lasso.v
    ~stem:
      (List.concat
         [
           H.read 1 x 0;
           H.write 2 x 1;
           H.commit 2;
           H.read 2 x 1 (* p2's parasitic transaction starts *);
         ])
    ~cycle:
      (List.concat
         [
           H.read 3 x 1;
           H.write_aborted 3 x 0;
           H.write 2 x 0;
           H.read 2 x 0;
           H.write 2 x 1;
           H.read 2 x 1;
         ])

let fig16 =
  History.of_events
    Event.
      [
        Inv (1, Read x);
        Res (1, Value 0);
        Inv (2, Write (y, 1));
        Inv (1, Write (x, 1));
        Res (1, Ok_written);
        Inv (1, Try_commit);
        Res (1, Committed);
        Res (2, Aborted);
        Inv (3, Read y);
        Res (3, Value 0);
        Inv (3, Write (y, 1));
        Res (3, Ok_written);
        Inv (1, Read y);
        Res (1, Value 0);
        Inv (3, Try_commit);
        Res (3, Committed);
        Inv (1, Try_commit);
        Res (1, Aborted);
        Inv (2, Read y);
        Res (2, Value 1);
        Inv (2, Read x);
        Res (2, Value 1);
        Inv (2, Try_commit);
        Res (2, Committed);
      ]

let all_finite =
  [
    ("fig1", fig1);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig8", fig8 ~v:0);
    ("fig16", fig16);
  ]

let all_lassos =
  [
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
  ]
