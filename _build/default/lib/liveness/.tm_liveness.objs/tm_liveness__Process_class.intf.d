lib/liveness/process_class.mli: Event Format Lasso Tm_history
