lib/liveness/process_class.ml: Event Fmt Lasso List String Tm_history
