lib/liveness/empirical.ml: Array Event Fmt History Lasso List Tm_history
