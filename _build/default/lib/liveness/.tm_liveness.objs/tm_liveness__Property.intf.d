lib/liveness/property.mli: Event Format Lasso Tm_history
