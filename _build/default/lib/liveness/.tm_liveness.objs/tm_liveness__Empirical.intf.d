lib/liveness/empirical.mli: Event Format History Lasso Tm_history
