lib/liveness/property.ml: Fmt Lasso List Process_class Tm_history
