open Tm_history

(** TM-liveness properties (Section 3) as decidable predicates on lassos.

    A TM-liveness property is a set [L] of infinite histories with
    [L_local ⊆ L ⊆ H_TM]; a history {e ensures} [L] iff it belongs to it.
    On lasso-represented histories, membership in the three properties the
    paper studies is decidable:

    - {e local progress}: every correct process makes progress (or there is
      no correct process) — the TM analogue of wait-freedom, proved
      impossible to combine with opacity in fault-prone systems
      (Theorem 1);
    - {e global progress}: at least one correct process makes progress (or
      there is no correct process) — ensured together with opacity by the
      paper's [Fgp] automaton (Theorem 3);
    - {e solo progress}: a process that runs alone makes progress (or no
      process runs alone).

    {e Nonblocking} and {e biprogressing} (Definitions 4 and 5) are
    second-order: they classify property {e sets}, not single histories.
    For a single history we expose the respect-checks ({!respects_nonblocking},
    {!respects_biprogressing}): a history that fails the check cannot belong
    to any nonblocking (biprogressing) property, which is exactly how the
    paper uses Figures 6 and 14.  For first-class properties (predicates) we
    expose {!nonblocking_on} and {!biprogressing_on}, which verify the
    definition over a corpus of sample histories. *)

val local_progress : Lasso.t -> bool
val global_progress : Lasso.t -> bool
val solo_progress : Lasso.t -> bool

val respects_nonblocking : Lasso.t -> bool
(** [respects_nonblocking l] holds iff: if some process runs alone in [l]
    then it makes progress.  A history violating this belongs to no
    nonblocking TM-liveness property (Definition 4). *)

val respects_biprogressing : Lasso.t -> bool
(** [respects_biprogressing l] holds iff: if at least two processes are
    correct then at least two make progress (Definition 5). *)

type t = { name : string; holds : Lasso.t -> bool }
(** A TM-liveness property as a first-class predicate. *)

val k_progress : int -> t
(** The paper's concluding remarks ask for the lattice between local and
    global progress; [k_progress k] is the natural family: at least
    [min k (number of correct processes)] correct processes make progress
    (vacuous without correct processes).  [k_progress 1] coincides with
    global progress; on histories with at most [n] processes,
    [k_progress n] coincides with local progress.  Every [k_progress k] is
    nonblocking, and for [k >= 2] it is biprogressing — hence, by
    Theorem 2, impossible to combine with opacity in a fault-prone
    system. *)

val priority_progress : priority:(Event.proc -> int) -> Lasso.t -> bool
(** The other future-work family from the paper's concluding remarks:
    progress for the processes of highest priority.  Holds iff every
    correct process whose priority is maximal among the correct processes
    makes progress.  With constant priorities this is local progress; with
    injective priorities it is a blocking property (only one process is
    ever entitled to progress). *)

val all : t list
(** [local-progress], [global-progress], [solo-progress],
    [2-progress], [3-progress]. *)

val stronger_on : t -> t -> Lasso.t list -> bool
(** [stronger_on l1 l2 corpus] checks [L1 ⊆ L2] on the given sample
    histories (property strength: smaller set = stronger property). *)

val nonblocking_on : t -> Lasso.t list -> bool
(** Definition 4 restricted to a corpus: every corpus history in the
    property with a process running alone has that process progressing. *)

val biprogressing_on : t -> Lasso.t list -> bool
(** Definition 5 restricted to a corpus. *)

type verdict = {
  local : bool;
  global : bool;
  solo : bool;
  nonblocking_ok : bool;
  biprogressing_ok : bool;
}

val verdict : Lasso.t -> verdict
val pp_verdict : Format.formatter -> verdict -> unit
