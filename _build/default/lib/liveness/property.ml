open Tm_history

let local_progress l =
  List.for_all (Process_class.makes_progress l) (Process_class.correct_processes l)

let global_progress l =
  match Process_class.correct_processes l with
  | [] -> true
  | correct -> List.exists (Process_class.makes_progress l) correct

let solo_progress l =
  List.for_all
    (fun p ->
      (not (Process_class.runs_alone l p)) || Process_class.makes_progress l p)
    (Lasso.procs l)

let respects_nonblocking = solo_progress

let respects_biprogressing l =
  let correct = Process_class.correct_processes l in
  List.length correct < 2
  || List.length (Process_class.progressing_processes l) >= 2

type t = { name : string; holds : Lasso.t -> bool }

let k_progress k =
  {
    name = Fmt.str "%d-progress" k;
    holds =
      (fun l ->
        let correct = Process_class.correct_processes l in
        let progressing = Process_class.progressing_processes l in
        correct = []
        || List.length progressing >= min k (List.length correct));
  }

let priority_progress ~priority l =
  match Process_class.correct_processes l with
  | [] -> true
  | correct ->
      let top =
        List.fold_left (fun acc p -> max acc (priority p)) min_int correct
      in
      List.for_all
        (fun p -> priority p < top || Process_class.makes_progress l p)
        correct

let all =
  [
    { name = "local-progress"; holds = local_progress };
    { name = "global-progress"; holds = global_progress };
    { name = "solo-progress"; holds = solo_progress };
    k_progress 2;
    k_progress 3;
  ]

let stronger_on l1 l2 corpus =
  List.for_all (fun h -> (not (l1.holds h)) || l2.holds h) corpus

let nonblocking_on l corpus =
  List.for_all
    (fun h -> (not (l.holds h)) || respects_nonblocking h)
    corpus

let biprogressing_on l corpus =
  List.for_all
    (fun h -> (not (l.holds h)) || respects_biprogressing h)
    corpus

type verdict = {
  local : bool;
  global : bool;
  solo : bool;
  nonblocking_ok : bool;
  biprogressing_ok : bool;
}

let verdict l =
  {
    local = local_progress l;
    global = global_progress l;
    solo = solo_progress l;
    nonblocking_ok = respects_nonblocking l;
    biprogressing_ok = respects_biprogressing l;
  }

let pp_verdict ppf v =
  let mark b = if b then "yes" else "no" in
  Fmt.pf ppf
    "local=%s global=%s solo=%s respects-nonblocking=%s \
     respects-biprogressing=%s"
    (mark v.local) (mark v.global) (mark v.solo) (mark v.nonblocking_ok)
    (mark v.biprogressing_ok)
