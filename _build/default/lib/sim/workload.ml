open Tm_history

type op =
  | W_read of Event.tvar
  | W_write of Event.tvar * ((Event.tvar * Event.value) list -> Event.value)

type body = op list

type t = { w_name : string; body : Prng.t -> int -> body }

let latest reads x =
  match List.assoc_opt x reads with Some v -> v | None -> 0

let increment x = W_write (x, fun reads -> latest reads x + 1)

let counter ~ntvars =
  {
    w_name = "counter";
    body =
      (fun g _ ->
        let x = Prng.int g ntvars in
        [ W_read x; increment x ]);
  }

let read_heavy ~ntvars ~reads =
  {
    w_name = Fmt.str "read-heavy-%d" reads;
    body =
      (fun g _ ->
        let rs = List.init reads (fun _ -> W_read (Prng.int g ntvars)) in
        let x = Prng.int g ntvars in
        rs @ [ W_read x; increment x ]);
  }

let read_only ~ntvars ~reads =
  {
    w_name = Fmt.str "read-only-%d" reads;
    body = (fun g _ -> List.init reads (fun _ -> W_read (Prng.int g ntvars)));
  }

let write_only ~ntvars ~writes =
  {
    w_name = Fmt.str "write-only-%d" writes;
    body =
      (fun g i ->
        List.init writes (fun _ ->
            W_write (Prng.int g ntvars, fun _ -> i + 1)));
  }

let transfer ~ntvars =
  {
    w_name = "transfer";
    body =
      (fun g _ ->
        if ntvars < 2 then invalid_arg "Workload.transfer: need >= 2 t-vars";
        let a = Prng.int g ntvars in
        let b = (a + 1 + Prng.int g (ntvars - 1)) mod ntvars in
        [
          W_read a;
          W_read b;
          W_write (a, fun reads -> latest reads a - 1);
          W_write (b, fun reads -> latest reads b + 1);
        ]);
  }

let hotspot ~ntvars ~hot ~bias_pct =
  {
    w_name = Fmt.str "hotspot-%d%%" bias_pct;
    body =
      (fun g _ ->
        let x =
          if Prng.int g 100 < bias_pct then hot else Prng.int g ntvars
        in
        [ W_read x; increment x ]);
  }

let fixed name bodies =
  {
    w_name = name;
    body =
      (fun _ i ->
        match bodies with
        | [] -> []
        | _ -> List.nth bodies (i mod List.length bodies));
  }
