open Tm_history

type action = Invoke of Event.proc * Event.invocation | Poll of Event.proc

let fresh entry ~nprocs ~ntvars =
  Tm_impl.Registry.instance entry
    (Tm_impl.Tm_intf.config ~nprocs ~ntvars ())

(* Replay an action sequence on a fresh instance, recording the history. *)
let replay entry ~nprocs ~ntvars actions =
  let tm = fresh entry ~nprocs ~ntvars in
  let h = ref History.empty in
  List.iter
    (fun a ->
      match a with
      | Invoke (p, inv) ->
          tm.Tm_impl.Tm_intf.invoke p inv;
          h := History.append !h (Event.Inv (p, inv))
      | Poll p -> (
          match tm.Tm_impl.Tm_intf.poll p with
          | Some r -> h := History.append !h (Event.Res (p, r))
          | None -> ()))
    actions;
  (tm, !h)

let enabled tm ~nprocs ~invocations =
  List.concat_map
    (fun p ->
      match tm.Tm_impl.Tm_intf.pending p with
      | Some _ -> [ Poll p ]
      | None -> List.map (fun inv -> Invoke (p, inv)) invocations)
    (List.init nprocs (fun i -> i + 1))

let run entry ~nprocs ~ntvars ~invocations ~depth ~on_history =
  let rec dfs actions d =
    let tm, h = replay entry ~nprocs ~ntvars actions in
    on_history h actions;
    if d > 0 then
      List.iter
        (fun a -> dfs (actions @ [ a ]) (d - 1))
        (enabled tm ~nprocs ~invocations)
  in
  dfs [] depth

let count_nodes entry ~nprocs ~ntvars ~invocations ~depth =
  let n = ref 0 in
  run entry ~nprocs ~ntvars ~invocations ~depth ~on_history:(fun _ _ -> incr n);
  !n
