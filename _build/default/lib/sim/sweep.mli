open Tm_history

(** Exhaustive schedule enumeration for model-checking a TM.

    Enumerates {e every} interleaving of up to [depth] scheduler actions —
    at each step each process either polls its pending operation or issues
    any invocation from the given menu — and hands each reached history to
    the callback.  Because TM implementations are mutable and a poll can
    advance internal state without emitting an event (multi-poll commits),
    nodes are identified by {e action} sequences and replayed on fresh
    instances; O(depth) per node, irrelevant at the depths that are
    feasible anyway (the tree has ~[(nprocs * |invocations|)^depth]
    nodes).

    Combined with the linear-time {!Tm_safety.Monitor} this gives a small
    bounded model checker: [Sweep.run] over all schedules, monitor each
    history, fall back to the exact checker on the rare [No_witness]. *)

type action = Invoke of Event.proc * Event.invocation | Poll of Event.proc

val run :
  Tm_impl.Registry.entry ->
  nprocs:int ->
  ntvars:int ->
  invocations:Event.invocation list ->
  depth:int ->
  on_history:(History.t -> action list -> unit) ->
  unit
(** [on_history] is called on every node (including internal ones) with
    the recorded history and the action sequence that produced it. *)

val count_nodes :
  Tm_impl.Registry.entry ->
  nprocs:int ->
  ntvars:int ->
  invocations:Event.invocation list ->
  depth:int ->
  int
