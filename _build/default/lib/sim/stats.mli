(** Small descriptive statistics for experiment series. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1) *)
  min : float;
  max : float;
  median : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on an empty list. *)

val of_ints : int list -> summary

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [0, 100], nearest-rank method. *)

val pp : Format.formatter -> summary -> unit
(** ["mean 12.3 ± 4.5 (min 3, median 11, max 25, n=40)"]. *)
