open Tm_history

(** Transaction workloads for the simulation runner.

    A workload turns a (process-local) PRNG and a transaction index into a
    {e body}: the operations the transaction performs before invoking
    [tryC].  Written values may depend on the values read so far, which is
    how counters and transfers are expressed. *)

type op =
  | W_read of Event.tvar
  | W_write of Event.tvar * ((Event.tvar * Event.value) list -> Event.value)
      (** the argument maps each t-variable to the {e latest} value this
          transaction read from it *)

type body = op list

type t = {
  w_name : string;
  body : Prng.t -> int -> body;  (** PRNG, transaction index *)
}

val counter : ntvars:int -> t
(** Read a random t-variable and write back its value plus one — the
    paper's canonical conflicting workload (Figures 5, 6: read v, write
    v+1). *)

val read_heavy : ntvars:int -> reads:int -> t
(** [reads] random reads, then one increment of a random t-variable. *)

val read_only : ntvars:int -> reads:int -> t

val write_only : ntvars:int -> writes:int -> t
(** Blind writes of the transaction index; used for parasites, who must
    never be aborted to stay parasitic (blind writes never fail
    validation in deferred-update TMs). *)

val transfer : ntvars:int -> t
(** Move one unit between two distinct random t-variables (a bank
    transfer); total balance is invariant under committed transactions. *)

val hotspot : ntvars:int -> hot:Event.tvar -> bias_pct:int -> t
(** Like {!counter} but hitting [hot] with probability [bias_pct]%. *)

val fixed : string -> body list -> t
(** A fixed cyclic sequence of transaction bodies (index modulo length). *)
