type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let percentile xs p =
  match List.sort Float.compare xs with
  | [] -> invalid_arg "Stats.percentile: empty series"
  | sorted ->
      let n = List.length sorted in
      let rank =
        int_of_float (Float.round (p /. 100. *. float_of_int n +. 0.5)) - 1
      in
      List.nth sorted (max 0 (min (n - 1) rank))

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty series"
  | _ ->
      let n = List.length xs in
      let fn = float_of_int n in
      let mean = List.fold_left ( +. ) 0. xs /. fn in
      let var =
        if n < 2 then 0.
        else
          List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
          /. (fn -. 1.)
      in
      {
        n;
        mean;
        stddev = sqrt var;
        min = List.fold_left Float.min Float.infinity xs;
        max = List.fold_left Float.max Float.neg_infinity xs;
        median = percentile xs 50.;
      }

let of_ints xs = summarize (List.map float_of_int xs)

let pp ppf s =
  Fmt.pf ppf "mean %.1f +/- %.1f (min %.0f, median %.0f, max %.0f, n=%d)"
    s.mean s.stddev s.min s.median s.max s.n
