type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int (seed * 2 + 1)) }

let copy g = { state = g.state }

let next g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int. *)
  let r = Int64.to_int (Int64.shift_right_logical (next g) 2) in
  r mod bound

let bool g = Int64.logand (next g) 1L = 1L

let pick g xs =
  match xs with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth xs (int g (List.length xs))

let split g = { state = mix (next g) }
