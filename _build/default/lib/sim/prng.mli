(** A deterministic splittable PRNG (splitmix64).

    All simulation randomness flows through explicit generator values so
    every experiment is reproducible from its seed. *)

type t

val create : int -> t
val copy : t -> t

val next : t -> int64
(** The next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  [bound > 0]. *)

val bool : t -> bool
val pick : t -> 'a list -> 'a

val split : t -> t
(** An independent generator derived from (and advancing) [g]. *)
