lib/sim/runner.ml: Array Event Fmt History List Prng Tm_history Tm_impl Workload
