lib/sim/conformance.ml: Array Event Fmt History Prng Tm_history Tm_impl
