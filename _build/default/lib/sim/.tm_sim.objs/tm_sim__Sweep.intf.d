lib/sim/sweep.mli: Event History Tm_history Tm_impl
