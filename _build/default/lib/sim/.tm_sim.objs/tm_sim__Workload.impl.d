lib/sim/workload.ml: Event Fmt List Prng Tm_history
