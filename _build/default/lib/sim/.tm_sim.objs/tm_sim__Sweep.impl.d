lib/sim/sweep.ml: Event History List Tm_history Tm_impl
