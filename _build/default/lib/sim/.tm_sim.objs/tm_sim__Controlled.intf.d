lib/sim/controlled.mli: History Tm_history Tm_impl Workload
