lib/sim/controlled.ml: Array Event History Prng Tm_history Tm_impl Workload
