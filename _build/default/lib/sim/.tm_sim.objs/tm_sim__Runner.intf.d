lib/sim/runner.mli: Event Format History Tm_history Tm_impl Workload
