lib/sim/prng.ml: Int64 List
