lib/sim/conformance.mli: History Tm_history Tm_impl
