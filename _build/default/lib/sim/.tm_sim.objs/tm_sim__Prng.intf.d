lib/sim/prng.mli:
