lib/sim/stats.ml: Float Fmt List
