lib/sim/workload.mli: Event Prng Tm_history
