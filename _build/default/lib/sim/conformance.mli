open Tm_history

(** Interface-conformance checking for TM implementations.

    The zoo's implementations satisfy these obligations by construction
    (their shared [Mailbox] enforces most of them), but a TM written by a
    downstream user against {!Tm_impl.Tm_intf.S} (see
    [examples/custom_tm.ml]) should be checked:

    - a poll with no pending invocation returns [None];
    - every response matches the kind of the pending invocation
      ([Σ∞k]-membership: a read is answered by a value or [A], a write by
      [ok] or [A], [tryC] by [C] or [A]);
    - [pending] agrees with the invoke/poll protocol;
    - the recorded history is well-formed;
    - responsive TMs answer within the patience bound.

    This checks {e interface} conformance only — use {!Tm_safety} for
    opacity and the adversary/matrix machinery for liveness. *)

type violation = {
  at_step : int;
  message : string;
  history_so_far : History.t;
}

val check :
  ?steps:int ->
  ?seed:int ->
  ?patience:int option ->
  nprocs:int ->
  ntvars:int ->
  Tm_impl.Registry.entry ->
  (History.t, violation) result
(** Random-drives the TM for [steps] (default 2000) micro-steps.
    [patience] (default [Some 1000]) bounds consecutive unanswered polls of
    one invocation; pass [None] for blocking TMs. *)
