open Tm_history

type violation = {
  at_step : int;
  message : string;
  history_so_far : History.t;
}

let check ?(steps = 2000) ?(seed = 0) ?(patience = Some 1000) ~nprocs ~ntvars
    entry =
  let cfg = Tm_impl.Tm_intf.config ~seed ~nprocs ~ntvars () in
  let tm = Tm_impl.Registry.instance entry cfg in
  let g = Prng.create seed in
  let history = ref History.empty in
  let expected : Event.invocation option array = Array.make (nprocs + 1) None in
  let streak = Array.make (nprocs + 1) 0 in
  let error = ref None in
  let fail step msg =
    if !error = None then
      error := Some { at_step = step; message = msg; history_so_far = !history }
  in
  (try
     for step = 0 to steps - 1 do
       let p = 1 + Prng.int g nprocs in
       (* Cross-check the TM's pending view against ours. *)
       (match (tm.Tm_impl.Tm_intf.pending p, expected.(p)) with
       | None, Some _ ->
           fail step (Fmt.str "pending lost for p%d" p);
           raise Exit
       | Some _, None ->
           fail step (Fmt.str "phantom pending for p%d" p);
           raise Exit
       | Some a, Some b when not (Event.equal_invocation a b) ->
           fail step (Fmt.str "pending mismatch for p%d" p);
           raise Exit
       | _ -> ());
       match expected.(p) with
       | None -> (
           (* A poll without a pending invocation must return None. *)
           match tm.Tm_impl.Tm_intf.poll p with
           | Some _ ->
               fail step (Fmt.str "response without invocation for p%d" p);
               raise Exit
           | None ->
               let inv =
                 match Prng.int g 4 with
                 | 0 -> Event.Read (Prng.int g ntvars)
                 | 1 | 2 -> Event.Write (Prng.int g ntvars, Prng.int g 5)
                 | _ -> Event.Try_commit
               in
               expected.(p) <- Some inv;
               streak.(p) <- 0;
               history := History.append !history (Event.Inv (p, inv));
               tm.Tm_impl.Tm_intf.invoke p inv)
       | Some inv -> (
           match tm.Tm_impl.Tm_intf.poll p with
           | None -> (
               streak.(p) <- streak.(p) + 1;
               match patience with
               | Some bound when streak.(p) > bound ->
                   fail step
                     (Fmt.str "p%d not answered within %d polls" p bound);
                   raise Exit
               | Some _ | None -> ())
           | Some resp ->
               if not (Event.matches inv resp) then begin
                 fail step
                   (Fmt.str "response kind mismatch for p%d (%a to %a)" p
                      Event.pp_response resp Event.pp_invocation inv);
                 raise Exit
               end;
               expected.(p) <- None;
               streak.(p) <- 0;
               history := History.append !history (Event.Res (p, resp)))
     done
   with Exit -> ());
  match !error with
  | Some v -> Error v
  | None ->
      (match History.well_formed !history with
      | Ok () -> Ok !history
      | Error m ->
          Error
            { at_step = steps; message = m; history_so_far = !history })
