open Tm_history

type outcome = {
  history : History.t;
  committed : int array;
  retries : int array;
}

(* Execute one complete operation against the TM on behalf of [p],
   recording events; polls until the TM answers. *)
let exec_op tm history p inv =
  history := History.append !history (Event.Inv (p, inv));
  tm.Tm_impl.Tm_intf.invoke p inv;
  let rec wait n =
    if n > 10_000 then failwith "controlled executor: TM not responding"
    else
      match tm.Tm_impl.Tm_intf.poll p with
      | Some r ->
          history := History.append !history (Event.Res (p, r));
          r
      | None -> wait (n + 1)
  in
  wait 0

(* Run one body to completion; [`Committed] or [`Aborted] (one attempt). *)
let attempt tm history p body =
  let rec ops reads = function
    | [] -> (
        match exec_op tm history p Event.Try_commit with
        | Event.Committed -> `Committed
        | Event.Aborted -> `Aborted
        | Event.Value _ | Event.Ok_written -> assert false)
    | Workload.W_read x :: rest -> (
        match exec_op tm history p (Event.Read x) with
        | Event.Value v -> ops ((x, v) :: reads) rest
        | Event.Aborted -> `Aborted
        | Event.Ok_written | Event.Committed -> assert false)
    | Workload.W_write (x, f) :: rest -> (
        match exec_op tm history p (Event.Write (x, f reads)) with
        | Event.Ok_written -> ops reads rest
        | Event.Aborted -> `Aborted
        | Event.Value _ | Event.Committed -> assert false)
  in
  ops [] body

let run entry ~nprocs ~ntvars ~submissions ~workload ~seed =
  let cfg = Tm_impl.Tm_intf.config ~seed ~nprocs ~ntvars () in
  let tm = Tm_impl.Registry.instance entry cfg in
  let master = Prng.create seed in
  let prngs = Array.init (nprocs + 1) (fun _ -> Prng.split master) in
  let history = ref History.empty in
  let committed = Array.make (nprocs + 1) 0 in
  let retries = Array.make (nprocs + 1) 0 in
  (* Round-robin over the submission queues: the TM (executor) decides the
     schedule, and it never interleaves two bodies — which is precisely
     the control the environment gives up in this model. *)
  for i = 0 to submissions - 1 do
    for p = 1 to nprocs do
      let body = workload.Workload.body prngs.(p) i in
      let rec until_committed k =
        if k > 1000 then
          failwith "controlled executor: body cannot commit in isolation"
        else
          match attempt tm history p body with
          | `Committed -> committed.(p) <- committed.(p) + 1
          | `Aborted ->
              retries.(p) <- retries.(p) + 1;
              until_committed (k + 1)
      in
      until_committed 0
    done
  done;
  { history = !history; committed; retries }
