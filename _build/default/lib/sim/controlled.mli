open Tm_history

(** The paper's second circumvention of Theorem 1 (Section 1.3, citing
    Fetzer's robust transactional memory): let the TM {e control the
    application} — processes hand over whole transaction bodies, and the
    TM re-executes each body internally until it commits, scheduling the
    re-executions itself.

    This breaks the impossibility because the model changes, not because
    the proof fails: the environment no longer chooses the interleaving of
    individual reads and writes, so the Algorithm-1 adversary cannot
    suspend a process between its read and its write and sneak a
    conflicting commit in between.  Inside this model:

    - every submitted transaction eventually commits ({e local progress at
      the submission level}), because the executor can always run a body
      in isolation;
    - parasitic processes cannot exist (a submission is a finite body —
      there is no way to keep executing operations without attempting to
      commit);
    - a crashed process simply stops submitting and obstructs nobody.

    The executor here is deliberately simple: round-robin over the
    processes' submission queues, retrying each body against the
    underlying TM until it commits.  The FW2 experiment runs the same
    workload whose step-level scheduling starved a process under Fgp and
    shows every submission committing. *)

type outcome = {
  history : History.t;  (** the history of the underlying TM *)
  committed : int array;  (** committed submissions per process *)
  retries : int array;  (** extra executions needed per process *)
}

val run :
  Tm_impl.Registry.entry ->
  nprocs:int ->
  ntvars:int ->
  submissions:int ->
  workload:Workload.t ->
  seed:int ->
  outcome
(** Each process submits [submissions] transaction bodies drawn from the
    workload; the executor commits them all.  @raise Failure if the
    underlying TM cannot commit a body even in isolation (no zoo TM is
    that broken). *)
