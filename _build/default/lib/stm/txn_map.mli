(** A transactional ordered map (AVL tree with integer keys).

    Every node lives in its own t-variable, so lookups of disjoint subtrees
    never conflict and all operations compose with an enclosing
    transaction.  Insertion and removal rebalance along the search path
    (standard AVL rotations), giving O(log n) t-variable touches per
    operation. *)

type 'a t

val make : unit -> 'a t

val set : 'a t -> int -> 'a -> unit
val find : 'a t -> int -> 'a option

val remove : 'a t -> int -> bool
(** Whether the key was present. *)

val cardinal : 'a t -> int

val bindings : 'a t -> (int * 'a) list
(** A consistent snapshot, ascending by key. *)

val check_balanced : 'a t -> bool
(** AVL invariant: every node's subtree heights differ by at most one and
    stored heights are correct (used by the tests). *)
