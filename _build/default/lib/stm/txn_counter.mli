(** A transactional counter. *)

type t

val make : int -> t

val incr : t -> unit
(** Composable: joins an enclosing transaction if one is active. *)

val add : t -> int -> unit
val get : t -> int
