(* AVL with one t-variable per child pointer.  The tree is manipulated
   functionally within a transaction: nodes reached along the search path
   are re-linked via writes to the parent t-variable; rotations allocate
   fresh t-variables for the moved links, which is fine — the old ones
   simply become garbage. *)

type 'a node = Leaf | Node of 'a cell

and 'a cell = {
  key : int;
  value : 'a Stm.tvar;
  left : 'a node Stm.tvar;
  right : 'a node Stm.tvar;
  height : int;
}

type 'a t = 'a node Stm.tvar

let make () = Stm.tvar Leaf

let height = function Leaf -> 0 | Node c -> c.height

let mk key value left right =
  let hl = height left and hr = height right in
  Node
    {
      key;
      value = Stm.tvar value;
      left = Stm.tvar left;
      right = Stm.tvar right;
      height = 1 + max hl hr;
    }

(* Rebuild a node from (possibly new) children, rebalancing if needed.
   Children are passed by value (already read). *)
let balance key value left right =
  let hl = height left and hr = height right in
  if hl > hr + 1 then
    match left with
    | Leaf -> assert false
    | Node lc ->
        let ll = Stm.read lc.left and lr = Stm.read lc.right in
        if height ll >= height lr then
          (* Right rotation. *)
          mk lc.key (Stm.read lc.value) ll (mk key value lr right)
        else (
          (* Left-right rotation. *)
          match lr with
          | Leaf -> assert false
          | Node lrc ->
              mk lrc.key
                (Stm.read lrc.value)
                (mk lc.key (Stm.read lc.value) ll (Stm.read lrc.left))
                (mk key value (Stm.read lrc.right) right))
  else if hr > hl + 1 then
    match right with
    | Leaf -> assert false
    | Node rc ->
        let rl = Stm.read rc.left and rr = Stm.read rc.right in
        if height rr >= height rl then
          (* Left rotation. *)
          mk rc.key (Stm.read rc.value) (mk key value left rl) rr
        else (
          match rl with
          | Leaf -> assert false
          | Node rlc ->
              mk rlc.key
                (Stm.read rlc.value)
                (mk key value left (Stm.read rlc.left))
                (mk rc.key (Stm.read rc.value) (Stm.read rlc.right) rr))
  else mk key value left right

let set t k v =
  Stm.atomically (fun () ->
      let rec insert node =
        match node with
        | Leaf -> mk k v Leaf Leaf
        | Node c ->
            if k = c.key then begin
              Stm.write c.value v;
              node
            end
            else if k < c.key then
              let left' = insert (Stm.read c.left) in
              balance c.key (Stm.read c.value) left' (Stm.read c.right)
            else
              let right' = insert (Stm.read c.right) in
              balance c.key (Stm.read c.value) (Stm.read c.left) right'
      in
      Stm.write t (insert (Stm.read t)))

let find t k =
  Stm.atomically (fun () ->
      let rec go = function
        | Leaf -> None
        | Node c ->
            if k = c.key then Some (Stm.read c.value)
            else if k < c.key then go (Stm.read c.left)
            else go (Stm.read c.right)
      in
      go (Stm.read t))

(* Remove the minimum binding of a non-empty tree; returns (key, value,
   remaining tree). *)
let rec take_min = function
  | Leaf -> assert false
  | Node c -> (
      match Stm.read c.left with
      | Leaf -> (c.key, Stm.read c.value, Stm.read c.right)
      | left ->
          let k, v, left' = take_min left in
          (k, v, balance c.key (Stm.read c.value) left' (Stm.read c.right)))

let remove t k =
  Stm.atomically (fun () ->
      let removed = ref false in
      let rec go node =
        match node with
        | Leaf -> Leaf
        | Node c ->
            if k = c.key then begin
              removed := true;
              match (Stm.read c.left, Stm.read c.right) with
              | Leaf, right -> right
              | left, Leaf -> left
              | left, right ->
                  let k', v', right' = take_min right in
                  balance k' v' left right'
            end
            else if k < c.key then
              balance c.key (Stm.read c.value) (go (Stm.read c.left))
                (Stm.read c.right)
            else
              balance c.key (Stm.read c.value) (Stm.read c.left)
                (go (Stm.read c.right))
      in
      Stm.write t (go (Stm.read t));
      !removed)

let bindings t =
  Stm.atomically (fun () ->
      let rec go acc = function
        | Leaf -> acc
        | Node c ->
            let acc = go acc (Stm.read c.right) in
            go ((c.key, Stm.read c.value) :: acc) (Stm.read c.left)
      in
      go [] (Stm.read t))

let cardinal t = List.length (bindings t)

let check_balanced t =
  Stm.atomically (fun () ->
      let rec go = function
        | Leaf -> Some 0
        | Node c -> (
            match (go (Stm.read c.left), go (Stm.read c.right)) with
            | Some hl, Some hr
              when abs (hl - hr) <= 1 && c.height = 1 + max hl hr ->
                Some c.height
            | _ -> None)
      in
      go (Stm.read t) <> None)
