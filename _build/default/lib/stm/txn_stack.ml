type 'a t = 'a list Stm.tvar

let make () = Stm.tvar []

let push s x = Stm.atomically (fun () -> Stm.write s (x :: Stm.read s))

let pop s =
  Stm.atomically (fun () ->
      match Stm.read s with
      | [] -> None
      | x :: rest ->
          Stm.write s rest;
          Some x)

let peek s =
  Stm.atomically (fun () ->
      match Stm.read s with [] -> None | x :: _ -> Some x)

let pop_blocking s =
  Stm.atomically (fun () ->
      match Stm.read s with
      | [] -> Stm.retry ()
      | x :: rest ->
          Stm.write s rest;
          x)

let length s = List.length (Stm.read s)
let to_list s = Stm.read s
