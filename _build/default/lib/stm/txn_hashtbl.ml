type 'a t = (int * 'a) list Stm.tvar array

let make ?(buckets = 64) () = Array.init buckets (fun _ -> Stm.tvar [])

let bucket t k = t.(abs (Hashtbl.hash k) mod Array.length t)

let set t k v =
  Stm.atomically (fun () ->
      let b = bucket t k in
      Stm.write b ((k, v) :: List.remove_assoc k (Stm.read b)))

let find t k =
  Stm.atomically (fun () -> List.assoc_opt k (Stm.read (bucket t k)))

let remove t k =
  Stm.atomically (fun () ->
      let b = bucket t k in
      let l = Stm.read b in
      if List.mem_assoc k l then begin
        Stm.write b (List.remove_assoc k l);
        true
      end
      else false)

let length t =
  Stm.atomically (fun () ->
      Array.fold_left (fun acc b -> acc + List.length (Stm.read b)) 0 t)
