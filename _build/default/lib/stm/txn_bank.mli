(** A transactional bank: the paper's motivating kind of workload.

    The total balance is invariant under {!transfer} (it moves money
    atomically) — the property the multicore stress tests check. *)

type t

val make : accounts:int -> initial:int -> t
val accounts : t -> int

val balance : t -> int -> int
(** Snapshot balance of one account. *)

val transfer : t -> from_:int -> to_:int -> amount:int -> bool
(** Atomically move [amount] if the source balance suffices; returns
    whether the transfer happened.  Composable within an enclosing
    transaction. *)

val total : t -> int
(** A consistent snapshot of the total balance (one transaction reading
    every account). *)
