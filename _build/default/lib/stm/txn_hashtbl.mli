(** A transactional fixed-bucket hash table with integer keys.

    Buckets are association lists held in t-variables; operations touch a
    single bucket, so transactions on different buckets never conflict. *)

type 'a t

val make : ?buckets:int -> unit -> 'a t

val set : 'a t -> int -> 'a -> unit
val find : 'a t -> int -> 'a option

val remove : 'a t -> int -> bool
(** Whether the key was present. *)

val length : 'a t -> int
(** Consistent snapshot count. *)
