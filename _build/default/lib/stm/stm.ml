(* TL2 over OCaml 5 atomics.

   Each t-variable carries a versioned lock word [vlock]: even = unlocked,
   value is (version << 1); odd = locked by a committing transaction.
   Readers use the classic seqlock protocol (read vlock, read content, read
   vlock again) and validate against the transaction's read version.

   Type erasure for the heterogeneous read/write sets uses the universal
   type trick: every t-variable carries its own injection/projection pair
   built from a locally generated extensible-variant constructor, so no
   [Obj] is needed. *)

type univ = exn

type 'a tvar = {
  id : int;
  content : 'a Atomic.t;
  vlock : int Atomic.t;
  inj : 'a -> univ;
  proj : univ -> 'a option;
}

let next_id = Atomic.make 0
let clock = Atomic.make 0
let commit_count = Atomic.make 0
let abort_count = Atomic.make 0

let tvar (type a) (init : a) : a tvar =
  let module M = struct
    exception E of a
  end in
  {
    id = Atomic.fetch_and_add next_id 1;
    content = Atomic.make init;
    vlock = Atomic.make 0;
    inj = (fun x -> M.E x);
    proj = (function M.E x -> Some x | _ -> None);
  }

exception Retry
exception Conflict

(* Write-set entry: the pending value plus closures for the commit
   protocol (lock, validate-ownership, publish, unlock). *)
type wentry = {
  w_id : int;
  mutable value : univ;
  try_lock : unit -> bool;
  unlock : unit -> unit;
  publish : univ -> int -> unit;
}

type rentry = { r_id : int; check : rv:int -> owned:(int -> bool) -> bool }

type txn = {
  mutable rv : int;
  mutable reads : rentry list;
  mutable writes : wentry list;  (** unordered; sorted by id at commit *)
}

let current : txn option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let locked v = v land 1 = 1
let version_of v = v lsr 1

let read_vlock tv = Atomic.get tv.vlock

let try_lock_tvar tv =
  let v = read_vlock tv in
  (not (locked v)) && Atomic.compare_and_set tv.vlock v (v lor 1)

let unlock_tvar tv =
  let v = read_vlock tv in
  if locked v then Atomic.set tv.vlock (v land lnot 1)

let publish_tvar (type a) (tv : a tvar) u wv =
  (match tv.proj u with
  | Some x -> Atomic.set tv.content x
  | None -> assert false);
  Atomic.set tv.vlock (wv lsl 1)

let wentry_of tv =
  {
    w_id = tv.id;
    value = tv.inj (Atomic.get tv.content) (* overwritten before use *);
    try_lock = (fun () -> try_lock_tvar tv);
    unlock = (fun () -> unlock_tvar tv);
    publish = (fun u wv -> publish_tvar tv u wv);
  }

let rentry_of tv seen_version =
  {
    r_id = tv.id;
    check =
      (fun ~rv ~owned ->
        let v = read_vlock tv in
        let ok_lock = (not (locked v)) || owned tv.id in
        ok_lock && version_of v <= rv && version_of v = seen_version);
  }

let in_transaction () = Option.is_some !(Domain.DLS.get current)

(* Direct (non-transactional) atomic snapshot read. *)
let rec snapshot_read tv =
  let v1 = read_vlock tv in
  if locked v1 then begin
    Domain.cpu_relax ();
    snapshot_read tv
  end
  else
    let x = Atomic.get tv.content in
    if read_vlock tv = v1 then x
    else begin
      Domain.cpu_relax ();
      snapshot_read tv
    end

let read (type a) (tv : a tvar) : a =
  match !(Domain.DLS.get current) with
  | None -> snapshot_read tv
  | Some txn -> (
      (* Read-own-write. *)
      match List.find_opt (fun w -> w.w_id = tv.id) txn.writes with
      | Some w -> (
          match tv.proj w.value with Some x -> x | None -> assert false)
      | None ->
          let v1 = read_vlock tv in
          if locked v1 || version_of v1 > txn.rv then raise Conflict;
          let x = Atomic.get tv.content in
          if read_vlock tv <> v1 then raise Conflict;
          txn.reads <- rentry_of tv (version_of v1) :: txn.reads;
          x)

let write (type a) (tv : a tvar) (x : a) : unit =
  match !(Domain.DLS.get current) with
  | None -> invalid_arg "Stm.write outside a transaction"
  | Some txn -> (
      match List.find_opt (fun w -> w.w_id = tv.id) txn.writes with
      | Some w -> w.value <- tv.inj x
      | None ->
          let w = wentry_of tv in
          w.value <- tv.inj x;
          txn.writes <- w :: txn.writes)

let retry () = raise Retry

let commit txn =
  match txn.writes with
  | [] -> () (* read-only: reads were validated against rv as they happened *)
  | writes ->
      let ws =
        List.sort_uniq (fun a b -> Int.compare a.w_id b.w_id) writes
      in
      (* Lock in canonical order; back out on failure. *)
      let rec lock_all acquired = function
        | [] -> List.rev acquired
        | w :: rest ->
            if w.try_lock () then lock_all (w :: acquired) rest
            else begin
              List.iter (fun a -> a.unlock ()) acquired;
              raise Conflict
            end
      in
      let acquired = lock_all [] ws in
      let wv = Atomic.fetch_and_add clock 1 + 1 in
      let owned id = List.exists (fun w -> w.w_id = id) ws in
      let valid =
        List.for_all (fun r -> r.check ~rv:txn.rv ~owned) txn.reads
      in
      if not valid then begin
        List.iter (fun w -> w.unlock ()) acquired;
        raise Conflict
      end;
      List.iter (fun w -> w.publish w.value wv) acquired

let backoff attempts prng_state =
  let bound = 1 lsl min attempts 10 in
  let spins = 1 + (!prng_state * 1103515245 + 12345) land 0x3FFFFFFF in
  prng_state := spins;
  for _ = 1 to spins mod bound do
    Domain.cpu_relax ()
  done

let atomically (type a) (f : unit -> a) : a =
  let slot = Domain.DLS.get current in
  match !slot with
  | Some _ -> f () (* flat nesting: join the enclosing transaction *)
  | None ->
      let prng_state = ref (Domain.self () :> int) in
      let rec attempt n =
        let txn = { rv = Atomic.get clock; reads = []; writes = [] } in
        slot := Some txn;
        match f () with
        | result -> (
            try
              commit txn;
              slot := None;
              Atomic.incr commit_count;
              result
            with Conflict ->
              slot := None;
              Atomic.incr abort_count;
              backoff n prng_state;
              attempt (n + 1))
        | exception Conflict ->
            slot := None;
            Atomic.incr abort_count;
            backoff n prng_state;
            attempt (n + 1)
        | exception Retry ->
            slot := None;
            Atomic.incr abort_count;
            backoff (n + 2) prng_state;
            attempt (n + 1)
        | exception e ->
            slot := None;
            raise e
      in
      attempt 0

let stats () = (Atomic.get commit_count, Atomic.get abort_count)
