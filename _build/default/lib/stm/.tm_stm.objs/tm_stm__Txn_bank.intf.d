lib/stm/txn_bank.mli:
