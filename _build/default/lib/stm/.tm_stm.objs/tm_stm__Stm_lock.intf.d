lib/stm/stm_lock.mli:
