lib/stm/txn_stack.mli:
