lib/stm/txn_map.mli:
