lib/stm/stm_lock.ml: Atomic Domain Mutex
