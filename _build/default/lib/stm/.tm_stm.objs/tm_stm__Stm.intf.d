lib/stm/stm.mli:
