lib/stm/txn_hashtbl.mli:
