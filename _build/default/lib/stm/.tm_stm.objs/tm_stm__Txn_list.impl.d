lib/stm/txn_list.ml: List Stm
