lib/stm/txn_queue.mli:
