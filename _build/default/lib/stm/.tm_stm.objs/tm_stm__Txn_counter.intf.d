lib/stm/txn_counter.mli:
