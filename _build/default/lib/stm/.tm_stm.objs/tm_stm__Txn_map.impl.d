lib/stm/txn_map.ml: List Stm
