lib/stm/txn_hashtbl.ml: Array Hashtbl List Stm
