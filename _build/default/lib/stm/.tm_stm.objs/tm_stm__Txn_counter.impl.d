lib/stm/txn_counter.ml: Stm
