lib/stm/txn_stack.ml: List Stm
