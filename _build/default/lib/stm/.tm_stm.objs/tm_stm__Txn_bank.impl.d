lib/stm/txn_bank.ml: Array Stm
