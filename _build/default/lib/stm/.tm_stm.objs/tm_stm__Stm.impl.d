lib/stm/stm.ml: Atomic Domain Int List Option
