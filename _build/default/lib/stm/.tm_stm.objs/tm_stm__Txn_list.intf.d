lib/stm/txn_list.mli:
