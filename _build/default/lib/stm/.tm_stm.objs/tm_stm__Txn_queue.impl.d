lib/stm/txn_queue.ml: List Stm
