type 'a t = { front : 'a list Stm.tvar; back : 'a list Stm.tvar }

let make () = { front = Stm.tvar []; back = Stm.tvar [] }

let push q x = Stm.atomically (fun () -> Stm.write q.back (x :: Stm.read q.back))

let pop q =
  Stm.atomically (fun () ->
      match Stm.read q.front with
      | x :: rest ->
          Stm.write q.front rest;
          Some x
      | [] -> (
          match List.rev (Stm.read q.back) with
          | [] -> None
          | x :: rest ->
              Stm.write q.back [];
              Stm.write q.front rest;
              Some x))

let pop_blocking q =
  Stm.atomically (fun () ->
      match Stm.read q.front with
      | x :: rest ->
          Stm.write q.front rest;
          x
      | [] -> (
          match List.rev (Stm.read q.back) with
          | [] -> Stm.retry ()
          | x :: rest ->
              Stm.write q.back [];
              Stm.write q.front rest;
              x))

let length q =
  Stm.atomically (fun () ->
      List.length (Stm.read q.front) + List.length (Stm.read q.back))

let to_list q =
  Stm.atomically (fun () -> Stm.read q.front @ List.rev (Stm.read q.back))
