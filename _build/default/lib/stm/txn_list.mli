(** A transactional sorted linked-list set of integers.

    The classic first STM benchmark structure (Herlihy et al., PODC 2003 —
    the paper's reference [14] introduced DSTM with exactly this example).
    Each node's next-pointer is a t-variable, so operations compose with
    any enclosing transaction. *)

type t

val make : unit -> t

val add : t -> int -> bool
(** [add t k] inserts [k]; false if already present. *)

val remove : t -> int -> bool
val mem : t -> int -> bool

val to_list : t -> int list
(** A consistent snapshot, ascending. *)

val cardinal : t -> int
