type node = Nil | Node of int * node Stm.tvar

type t = node Stm.tvar  (** head *)

let make () = Stm.tvar Nil

(* Find the first node with key >= k; returns the t-variable pointing to
   it (for in-place splicing). *)
let rec locate ptr k =
  match Stm.read ptr with
  | Nil -> ptr
  | Node (key, next) -> if key >= k then ptr else locate next k

let add t k =
  Stm.atomically (fun () ->
      let ptr = locate t k in
      match Stm.read ptr with
      | Node (key, _) when key = k -> false
      | (Nil | Node _) as rest ->
          Stm.write ptr (Node (k, Stm.tvar rest));
          true)

let remove t k =
  Stm.atomically (fun () ->
      let ptr = locate t k in
      match Stm.read ptr with
      | Node (key, next) when key = k ->
          Stm.write ptr (Stm.read next);
          true
      | Nil | Node _ -> false)

let mem t k =
  Stm.atomically (fun () ->
      let ptr = locate t k in
      match Stm.read ptr with
      | Node (key, _) -> key = k
      | Nil -> false)

let to_list t =
  Stm.atomically (fun () ->
      let rec go acc ptr =
        match Stm.read ptr with
        | Nil -> List.rev acc
        | Node (k, next) -> go (k :: acc) next
      in
      go [] t)

let cardinal t = List.length (to_list t)
