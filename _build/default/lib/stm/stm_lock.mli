(** The global-lock STM, for real hardware.

    The same API as {!Stm}, implemented with one global mutex: every
    transaction runs under it, so nothing ever aborts and — in a crash-free,
    parasitic-free process — every transaction commits on its first attempt
    (the paper's §1.1/§3.2.1 observation that a fair global lock gives
    local progress when nobody is faulty).

    The price is the paper's footnote 1 (Amdahl): transactions wait for
    each other, so throughput cannot scale with cores.  The P3 experiment
    in the bench harness measures exactly this against the resilient
    TL2-style {!Stm} runtime: disjoint-access workloads scale on {!Stm}
    and stay flat here. *)

type 'a tvar

val tvar : 'a -> 'a tvar
val atomically : (unit -> 'a) -> 'a
val read : 'a tvar -> 'a
val write : 'a tvar -> 'a -> unit
val in_transaction : unit -> bool

val commits : unit -> int
(** Transactions executed so far (every one commits). *)
