(** A transactional LIFO stack. *)

type 'a t

val make : unit -> 'a t
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
val peek : 'a t -> 'a option

val pop_blocking : 'a t -> 'a
(** Retries until an element is available (busy-wait, see {!Stm.retry}). *)

val length : 'a t -> int
val to_list : 'a t -> 'a list
