(** A transactional FIFO queue (two-list functional queue in t-variables). *)

type 'a t

val make : unit -> 'a t
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** [None] when empty. *)

val pop_blocking : 'a t -> 'a
(** Retries the transaction until an element is available (busy-wait
    retry; see {!Stm.retry}). *)

val length : 'a t -> int
val to_list : 'a t -> 'a list
