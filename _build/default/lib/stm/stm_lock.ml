type 'a tvar = 'a ref

let lock = Mutex.create ()
let commit_count = Atomic.make 0

let depth : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let tvar v = ref v

let in_transaction () = !(Domain.DLS.get depth) > 0

let atomically f =
  let d = Domain.DLS.get depth in
  if !d > 0 then f () (* flat nesting *)
  else begin
    Mutex.lock lock;
    incr d;
    match f () with
    | result ->
        decr d;
        Mutex.unlock lock;
        Atomic.incr commit_count;
        result
    | exception e ->
        decr d;
        Mutex.unlock lock;
        raise e
  end

let read tv =
  if in_transaction () then !tv
  else atomically (fun () -> !tv)

let write tv v =
  if in_transaction () then tv := v
  else invalid_arg "Stm_lock.write outside a transaction"

let commits () = Atomic.get commit_count
