type t = int Stm.tvar array

let make ~accounts ~initial = Array.init accounts (fun _ -> Stm.tvar initial)

let accounts t = Array.length t

let balance t i = Stm.read t.(i)

let transfer t ~from_ ~to_ ~amount =
  Stm.atomically (fun () ->
      let b = Stm.read t.(from_) in
      if b < amount then false
      else begin
        Stm.write t.(from_) (b - amount);
        Stm.write t.(to_) (Stm.read t.(to_) + amount);
        true
      end)

let total t =
  Stm.atomically (fun () ->
      Array.fold_left (fun acc a -> acc + Stm.read a) 0 t)
