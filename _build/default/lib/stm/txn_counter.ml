type t = int Stm.tvar

let make n = Stm.tvar n

let add t k = Stm.atomically (fun () -> Stm.write t (Stm.read t + k))
let incr t = add t 1
let get t = Stm.read t
