open Tm_history

(** The impossibility-proof adversary (Section 4, Algorithms 1 and 2; and
    the n-process generalization behind Lemma 1).

    Each history of a TM is a game between the environment and the
    implementation; the environment (processes plus scheduler) chooses
    invocations, the implementation chooses responses.  The proof of
    Theorem 1 exhibits a winning environment strategy: against {e any} TM
    ensuring opacity, the strategy produces an infinite history violating
    local progress — process p1 never commits.  This module makes that
    strategy executable so it can be run against the whole zoo.

    - {!Algorithm_1} is the parasitic-free-case strategy: p1 reads [x] and
      is then suspended while p2 repeatedly reads [x], writes [v+1] and
      commits; afterwards p1 attempts its own write and commit and — if
      the TM is opaque — must be aborted (else the history would end in
      Figure 8's non-opaque suffix).
    - {!Algorithm_2} is the crash-free-case strategy: the same conflict,
      but p1 re-reads in every round so that it never stops taking steps
      (it is either aborted infinitely often, or becomes parasitic — the
      Figure 12/13 dichotomy).

    A round of either algorithm is one successful commit by p2 followed by
    p1's (doomed) attempt.  If the TM ever lets p1 commit, the resulting
    finite history is reported as [terminated] — the test suite then
    checks it is non-opaque, which is exactly the paper's argument.
    Blocking TMs (the global lock) respond to the adversary by withholding
    responses; this is detected via a patience bound and reported as
    [blocked] — such TMs escape the theorem by failing responsiveness, not
    by ensuring local progress. *)

type algorithm = Algorithm_1 | Algorithm_2

type result = {
  history : History.t;
  rounds_completed : int;
  victim_commits : int;  (** commits by p1 — 0 for any opaque TM *)
  victim_aborts : int;
  winner_commits : int;  (** commits by p2 *)
  blocked : bool;
      (** some operation exceeded the patience bound without a response *)
  winner_starved : bool;
      (** p2 was answered but never allowed to commit: the adversary wins
          with the Figure 9 (Algorithm 1) or Figure 12 (Algorithm 2)
          suffix — produced by over-conservative TMs like [quiescent] *)
  terminated : bool;  (** p1 committed and the strategy stopped *)
}

val run :
  ?patience:int ->
  ?rounds:int ->
  Tm_impl.Registry.entry ->
  algorithm ->
  result
(** Defaults: patience 200 polls, 50 rounds. *)

(** The n-process generalization (Lemma 1): one winner process commits
    round after round; the other [n-1] victims read before the winner's
    commit and attempt their own conflicting write afterwards, so at least
    two processes are correct but at most one makes progress. *)
module General : sig
  type nresult = {
    history : History.t;
    rounds_completed : int;
    commits : int array;  (** per process, 1..n; only the winner moves *)
    aborts : int array;
    blocked : bool;
    any_victim_committed : bool;
  }

  val run :
    ?patience:int -> ?rounds:int -> nprocs:int -> Tm_impl.Registry.entry ->
    nresult
end
