lib/adversary/adversary.mli: History Tm_history Tm_impl
