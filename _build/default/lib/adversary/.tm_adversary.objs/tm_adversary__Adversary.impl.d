lib/adversary/adversary.ml: Array Event History List Tm_history Tm_impl
