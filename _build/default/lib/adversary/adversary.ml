open Tm_history

type algorithm = Algorithm_1 | Algorithm_2

type result = {
  history : History.t;
  rounds_completed : int;
  victim_commits : int;
  victim_aborts : int;
  winner_commits : int;
  blocked : bool;
  winner_starved : bool;
  terminated : bool;
}

exception Blocked
exception Winner_starved

(* Shared driving machinery: perform one complete operation (invocation
   followed by polls until the TM responds), recording events. *)
module Drive = struct
  type t = {
    tm : Tm_impl.Tm_intf.instance;
    mutable history : History.t;
    patience : int;
  }

  let make tm patience = { tm; history = History.empty; patience }

  let op d p inv =
    d.history <- History.append d.history (Event.Inv (p, inv));
    d.tm.Tm_impl.Tm_intf.invoke p inv;
    let rec wait n =
      if n > d.patience then raise Blocked
      else
        match d.tm.Tm_impl.Tm_intf.poll p with
        | Some resp ->
            d.history <- History.append d.history (Event.Res (p, resp));
            resp
        | None -> wait (n + 1)
    in
    wait 0

  (* One read/write/commit attempt by the winner; [`Committed] or
     [`Aborted]. *)
  let one_attempt d p x =
    match op d p (Event.Read x) with
    | Event.Aborted -> `Aborted
    | Event.Value v -> (
        match op d p (Event.Write (x, v + 1)) with
        | Event.Aborted -> `Aborted
        | Event.Ok_written -> (
            match op d p Event.Try_commit with
            | Event.Committed -> `Committed
            | Event.Aborted -> `Aborted
            | Event.Value _ | Event.Ok_written -> assert false)
        | Event.Value _ | Event.Committed -> assert false)
    | Event.Ok_written | Event.Committed -> assert false

  (* Repeat p's read/write/commit cycle until it commits; returns the
     number of aborted attempts.  Used for the winner process, which any
     TM ensuring at least global progress lets through while its rival is
     suspended; a TM that keeps aborting it starves the winner (the
     Figure 9 case). *)
  let commit_cycle d p x ~max_attempts =
    let rec attempt k =
      if k > max_attempts then raise Winner_starved
      else
        match one_attempt d p x with
        | `Committed -> k
        | `Aborted -> attempt (k + 1)
    in
    attempt 0
end

let x = 0

let run ?(patience = 200) ?(rounds = 50) entry algorithm =
  let cfg = Tm_impl.Tm_intf.config ~nprocs:2 ~ntvars:1 () in
  let tm = Tm_impl.Registry.instance entry cfg in
  let d = Drive.make tm patience in
  let victim_commits = ref 0 in
  let victim_aborts = ref 0 in
  let winner_commits = ref 0 in
  let terminated = ref false in
  let blocked = ref false in
  let completed = ref 0 in
  (* p1's last read response, [None] when the last response was an
     abort. *)
  let p1_value = ref None in
  let p1_read () =
    match Drive.op d 1 (Event.Read x) with
    | Event.Value v -> p1_value := Some v
    | Event.Aborted ->
        incr victim_aborts;
        p1_value := None
    | Event.Ok_written | Event.Committed -> assert false
  in
  (* Step 3 of Algorithm 1 / Step 2 of Algorithm 2: p1 attempts the
     conflicting write and commit; an opaque TM must abort it. *)
  let p1_attempt () =
    match !p1_value with
    | None -> ()
    | Some v -> (
        p1_value := None;
        match Drive.op d 1 (Event.Write (x, v + 1)) with
        | Event.Aborted -> incr victim_aborts
        | Event.Ok_written -> (
            match Drive.op d 1 Event.Try_commit with
            | Event.Committed ->
                incr victim_commits;
                terminated := true
            | Event.Aborted -> incr victim_aborts
            | Event.Value _ | Event.Ok_written -> assert false)
        | Event.Value _ | Event.Committed -> assert false)
  in
  let winner_starved = ref false in
  (try
     match algorithm with
     | Algorithm_1 ->
         (* p1 reads once (Step 1), then is suspended; each round: p2
            retries until it commits (Step 2), p1 attempts (Step 3) and,
            aborted, reads again. *)
         p1_read ();
         while (not !terminated) && !completed < rounds do
           let _aborted = Drive.commit_cycle d 2 x ~max_attempts:patience in
           incr winner_commits;
           p1_attempt ();
           if not !terminated then p1_read ();
           incr completed
         done
     | Algorithm_2 ->
         (* The paper's Step 1, literally: every iteration starts with a
            read by p1, then one attempt by p2; only when p2 commits does
            p1 attempt (Step 2).  A TM that never aborts p1's reads and
            never commits p2 turns p1 parasitic — the Figure 12 case. *)
         let iterations = ref 0 in
         let iteration_cap = rounds * patience in
         while
           (not !terminated) && !completed < rounds
           && !iterations < iteration_cap
         do
           incr iterations;
           p1_read ();
           match Drive.one_attempt d 2 x with
           | `Committed ->
               incr winner_commits;
               p1_attempt ();
               incr completed
           | `Aborted -> ()
         done;
         if !winner_commits = 0 && !iterations >= iteration_cap then
           winner_starved := true
   with
  | Blocked -> blocked := true
  | Winner_starved -> winner_starved := true);
  {
    history = d.Drive.history;
    rounds_completed = !completed;
    victim_commits = !victim_commits;
    victim_aborts = !victim_aborts;
    winner_commits = !winner_commits;
    blocked = !blocked;
    winner_starved = !winner_starved;
    terminated = !terminated;
  }

module General = struct
  type nresult = {
    history : History.t;
    rounds_completed : int;
    commits : int array;
    aborts : int array;
    blocked : bool;
    any_victim_committed : bool;
  }

  let run ?(patience = 400) ?(rounds = 25) ~nprocs entry =
    if nprocs < 2 then invalid_arg "General.run: need at least 2 processes";
    let cfg = Tm_impl.Tm_intf.config ~nprocs ~ntvars:1 () in
    let tm = Tm_impl.Registry.instance entry cfg in
    let d = Drive.make tm patience in
    let commits = Array.make (nprocs + 1) 0 in
    let aborts = Array.make (nprocs + 1) 0 in
    let blocked = ref false in
    let any_victim_committed = ref false in
    let completed = ref 0 in
    let winner = nprocs in
    let victims = List.init (nprocs - 1) (fun i -> i + 1) in
    (* Per-victim last read value ([None] after an abort). *)
    let values = Array.make (nprocs + 1) None in
    let victim_read p =
      match Drive.op d p (Event.Read x) with
      | Event.Value v -> values.(p) <- Some v
      | Event.Aborted ->
          aborts.(p) <- aborts.(p) + 1;
          values.(p) <- None
      | Event.Ok_written | Event.Committed -> assert false
    in
    let victim_attempt p =
      match values.(p) with
      | None -> ()
      | Some v -> (
          values.(p) <- None;
          match Drive.op d p (Event.Write (x, v + 1)) with
          | Event.Aborted -> aborts.(p) <- aborts.(p) + 1
          | Event.Ok_written -> (
              match Drive.op d p Event.Try_commit with
              | Event.Committed ->
                  commits.(p) <- commits.(p) + 1;
                  any_victim_committed := true
              | Event.Aborted -> aborts.(p) <- aborts.(p) + 1
              | Event.Value _ | Event.Ok_written -> assert false)
          | Event.Value _ | Event.Committed -> assert false)
    in
    (try
       while (not !any_victim_committed) && !completed < rounds do
         List.iter victim_read victims;
         let _ = Drive.commit_cycle d winner x ~max_attempts:patience in
         commits.(winner) <- commits.(winner) + 1;
         List.iter victim_attempt victims;
         incr completed
       done
     with
    | Blocked -> blocked := true
    | Winner_starved ->
        (* A TM without global progress can starve the winner too; for the
           purposes of Lemma 1 this is still a win for the environment, but
           we surface it as a blocked run. *)
        blocked := true);
    {
      history = d.Drive.history;
      rounds_completed = !completed;
      commits;
      aborts;
      blocked = !blocked;
      any_victim_committed = !any_victim_committed;
    }
end
