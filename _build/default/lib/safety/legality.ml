open Tm_history

(* Replay the transaction's completed operations against the committed
   [store], honouring its own earlier writes. *)
let transaction_legal store t =
  let rec go own = function
    | [] -> true
    | Transaction.O_read (x, v) :: rest ->
        let expected =
          match List.assoc_opt x own with
          | Some w -> w
          | None -> Store.get store x
        in
        v = expected && go own rest
    | Transaction.O_write (x, v) :: rest -> go ((x, v) :: own) rest
  in
  go [] t.Transaction.ops

let commit_effect store t =
  if Transaction.is_committed t then
    Store.apply_writes store (Transaction.writes t)
  else store

let is_sequential h =
  let ts = Transaction.of_history h in
  let rec pairwise = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) ->
        (not (Transaction.concurrent a b)) && pairwise rest
  in
  (* Transactions are sorted by first position; in a sequential history each
     one must precede the next, which by transitivity orders every pair. *)
  pairwise ts

let sequential_legal h =
  let ts = Transaction.of_history h in
  let rec go store = function
    | [] -> true
    | t :: rest ->
        transaction_legal store t && go (commit_effect store t) rest
  in
  go Store.initial ts
