lib/safety/completion.ml: Int List Tm_history Transaction
