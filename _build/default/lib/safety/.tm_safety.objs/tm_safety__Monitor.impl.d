lib/safety/monitor.ml: Event Fmt Hashtbl History Int List Tm_history
