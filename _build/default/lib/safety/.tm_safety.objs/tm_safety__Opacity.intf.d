lib/safety/opacity.mli: History Tm_history Transaction
