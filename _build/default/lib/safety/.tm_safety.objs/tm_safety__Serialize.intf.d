lib/safety/serialize.mli: Tm_history Transaction
