lib/safety/store.ml: Event Fmt Int List Map Tm_history
