lib/safety/monitor.mli: Event History Tm_history
