lib/safety/store.mli: Event Format Tm_history
