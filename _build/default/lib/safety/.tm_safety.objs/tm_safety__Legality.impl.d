lib/safety/legality.ml: List Store Tm_history Transaction
