lib/safety/completion.mli: History Tm_history Transaction
