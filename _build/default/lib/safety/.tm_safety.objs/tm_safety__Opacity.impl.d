lib/safety/opacity.ml: Completion Fmt History List Option Serialize Tm_history
