lib/safety/serialize.ml: Array Bytes Char Fun Hashtbl Int Legality List Option Store Tm_history Transaction
