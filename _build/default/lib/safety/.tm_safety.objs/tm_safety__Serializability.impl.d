lib/safety/serializability.ml: Completion Event History List Option Serialize Tm_history Transaction
