lib/safety/legality.mli: History Store Tm_history Transaction
