lib/safety/serializability.mli: History Tm_history Transaction
