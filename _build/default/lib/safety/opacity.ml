open Tm_history

(* Try each completion choice (see Completion): the history is opaque iff
   some completion has a legal real-time-preserving serialization. *)
let serialization h =
  List.find_map Serialize.search (Completion.candidates h)

let is_opaque h = Option.is_some (serialization h)

let explain h =
  match serialization h with
  | Some order -> Ok order
  | None ->
      Error
        (Fmt.str
           "no legal real-time-preserving serialization of any completion \
            of H exists for:@ %a"
           History.pp h)
