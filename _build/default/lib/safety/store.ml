open Tm_history

module M = Map.Make (Int)

type t = Event.value M.t

let initial = M.empty

let get s x = match M.find_opt x s with Some v -> v | None -> 0

let set s x v = if v = 0 then M.remove x s else M.add x v s

let apply_writes s ws = List.fold_left (fun s (x, v) -> set s x v) s ws

let bindings = M.bindings

let equal = M.equal Int.equal

let pp ppf s =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") int int))
    (bindings s)
