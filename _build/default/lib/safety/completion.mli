open Tm_history

(** Completions of a finite history's transactions.

    The paper's [com(H)] aborts every transaction that is neither committed
    nor aborted.  For transactions whose last event is a {e pending [tryC]
    invocation} that is too strict: the TM may already have made the commit
    take effect without the response being delivered (a helped commit in
    OSTM, or a crash between write-back and response delivery in TL2), and
    the standard treatment of opacity lets the checker complete such a
    transaction either way.  {!candidates} enumerates the possible
    completion choices: every live non-commit-pending transaction is
    aborted; every commit-pending transaction is either aborted or
    committed.  Completed-as transactions get [last_pos = max_int],
    mirroring the fact that [com(H)] appends completion events at the end
    of the history (so they real-time-precede nothing).

    The enumeration is ordered all-aborted first (the common case) and is
    exponential only in the number of commit-pending transactions, which is
    bounded by the number of processes. *)

val candidates : History.t -> Transaction.t list list
(** @raise Invalid_argument when there are more than 16 commit-pending
    transactions (no realistic history has that many). *)
