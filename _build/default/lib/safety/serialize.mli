open Tm_history

(** Search for a legal serialization of a set of completed transactions.

    Given transactions extracted from a history (all committed or aborted),
    {!search} looks for a total order that extends the real-time order [<H]
    (which subsumes per-process program order, since same-process
    transactions are never concurrent) and in which every transaction is
    legal when replayed against the committed store built from the
    transactions placed before it.

    Such an order exists iff there is a sequential history [Hs] equivalent
    to the input that preserves its real-time order with every transaction
    legal — exactly the witness required by opacity (when the input is
    [com(H)]'s transactions) and by strict serializability (when the input
    is the committed transactions of [H]).

    The search is backtracking with two prunings: transactions are only
    candidates once all their real-time predecessors are placed, and visited
    (placed-set, store) states are memoized (from an identical residual
    problem the outcome is identical).  Worst-case exponential — deciding
    opacity is NP-hard in general — but near-linear on histories produced by
    actual single-version TMs, whose commit order is itself a witness; the
    candidate ordering tries the history's own commit order first. *)

val search : Transaction.t list -> Transaction.t list option
(** [search ts] is a witness order, or [None] if none exists. *)

val exists : Transaction.t list -> bool
