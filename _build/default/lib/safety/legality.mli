open Tm_history

(** Legality of transactions in sequential histories (Section 2.4).

    A transaction [T] is legal in a complete sequential history when the
    projection [visible(T)] — the committed transactions preceding [T],
    followed by [T] itself — respects the semantics of every t-variable:
    each read of [x] returns the value of the transaction's own latest
    preceding write to [x], or, absent one, the value of [x] when the
    transaction starts (i.e. the latest committed write before it, or the
    initial value 0). *)

val transaction_legal : Store.t -> Transaction.t -> bool
(** [transaction_legal store t] holds iff [t]'s completed operations replay
    legally when the committed state at [t]'s start is [store]. *)

val commit_effect : Store.t -> Transaction.t -> Store.t
(** The committed state after [t], i.e. [store] updated by [t]'s completed
    writes if [t] is committed, and [store] unchanged otherwise. *)

val is_sequential : History.t -> bool
(** [is_sequential h] holds iff no two transactions of [h] are concurrent
    (the paper's definition of a sequential history). *)

val sequential_legal : History.t -> bool
(** [sequential_legal h] holds for a complete sequential history iff every
    transaction in it is legal.  Replays transactions in order, threading
    the committed store. *)
