open Tm_history

(** An immutable snapshot of the t-variables' committed state.

    Every t-variable initially holds [0] (the convention used by all of the
    paper's figures).  Stores are persistent maps, cheap to copy during the
    serialization search. *)

type t

val initial : t
(** All t-variables hold 0. *)

val get : t -> Event.tvar -> Event.value
val set : t -> Event.tvar -> Event.value -> t

val apply_writes : t -> (Event.tvar * Event.value) list -> t
(** Apply writes in order (later writes to the same t-variable win). *)

val bindings : t -> (Event.tvar * Event.value) list
(** Non-default bindings, ascending by t-variable; usable as a hash key. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
