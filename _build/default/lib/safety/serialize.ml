open Tm_history

(* The placed set is a bitmap over transaction indices, encoded in Bytes so
   any number of transactions is supported; copies are cheap at test sizes. *)
module Mask = struct
  let create n = Bytes.make ((n + 7) / 8) '\000'

  let mem m i =
    Char.code (Bytes.get m (i / 8)) land (1 lsl (i mod 8)) <> 0

  let add m i =
    let m' = Bytes.copy m in
    let b = Char.code (Bytes.get m' (i / 8)) lor (1 lsl (i mod 8)) in
    Bytes.set m' (i / 8) (Char.chr b);
    m'

  let key m = Bytes.to_string m
end

let search ts =
  let txns = Array.of_list ts in
  let n = Array.length txns in
  (* preds.(j) lists the indices that must be placed before j. *)
  let preds =
    Array.init n (fun j ->
        List.filter
          (fun i -> Transaction.precedes txns.(i) txns.(j))
          (List.init n Fun.id))
  in
  (* Candidate ordering: try the history's own completion order first (the
     global position of each transaction's last event), which is a witness
     for well-behaved TMs and makes the common case near-linear. *)
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b -> Int.compare txns.(a).Transaction.last_pos txns.(b).last_pos)
    order;
  let visited : (string * (int * int) list, unit) Hashtbl.t =
    Hashtbl.create 64
  in
  let rec go mask store placed count =
    if count = n then Some (List.rev placed)
    else
      let state_key = (Mask.key mask, Store.bindings store) in
      if Hashtbl.mem visited state_key then None
      else begin
        Hashtbl.add visited state_key ();
        let try_candidate acc j =
          match acc with
          | Some _ -> acc
          | None ->
              if Mask.mem mask j then None
              else if not (List.for_all (Mask.mem mask) preds.(j)) then None
              else if not (Legality.transaction_legal store txns.(j)) then
                None
              else
                go (Mask.add mask j)
                  (Legality.commit_effect store txns.(j))
                  (txns.(j) :: placed)
                  (count + 1)
        in
        Array.fold_left try_candidate None order
      end
  in
  go (Mask.create n) Store.initial [] 0

let exists ts = Option.is_some (search ts)
