open Tm_history

(** The opacity checker (Section 2.4).

    A finite history [H] is opaque iff there exists a sequential history
    [Hs] equivalent to [com(H)] that preserves the real-time order of
    [com(H)] and in which every transaction — including every aborted
    one — is legal.  A TM implementation ensures opacity iff every finite
    history it produces is opaque.

    Completion: the paper's [com(H)] aborts every unfinished transaction,
    but a transaction whose last event is a pending [tryC] may already have
    taken effect inside the TM (helped commits, crash after write-back);
    following the standard treatment, the checker considers {e both}
    completions of commit-pending transactions — see {!Completion}.

    The paper's running examples: Figure 1 is opaque; Figure 4 is not
    (though strictly serializable); Figure 3 and Figure 8's terminating
    suffix are not even strictly serializable.  All are checked in the test
    suite. *)

val is_opaque : History.t -> bool

val serialization : History.t -> Transaction.t list option
(** A witness sequential order of [com(H)]'s transactions, if one exists. *)

val explain : History.t -> (Transaction.t list, string) result
(** Like {!serialization} but with a human-readable failure message. *)
