open Tm_history

let committed_transactions h =
  List.filter Transaction.is_committed (Transaction.of_history h)

(* A transaction's events are exactly its process's events between its first
   and last global positions, so position-range membership plus the process
   filter picks out the right subsequence. *)
let committed_projection h =
  let committed = committed_transactions h in
  let events =
    History.events h
    |> List.mapi (fun i e -> (i, e))
    |> List.filter (fun (i, e) ->
           List.exists
             (fun t ->
               t.Transaction.proc = Event.proc e
               && i >= t.Transaction.first_pos
               && i <= t.Transaction.last_pos)
             committed)
    |> List.map snd
  in
  History.of_events events

(* Like opacity, a commit-pending transaction may have taken effect without
   its response being delivered, so each completion choice contributes its
   chosen commits to Hcom. *)
let serialization h =
  List.find_map
    (fun ts -> Serialize.search (List.filter Transaction.is_committed ts))
    (Completion.candidates h)

let is_strictly_serializable h = Option.is_some (serialization h)
