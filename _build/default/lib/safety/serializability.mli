open Tm_history

(** The strict-serializability checker (Section 2.4).

    A finite history [H] is strictly serializable iff there is a sequential
    history equivalent to [Hcom] — the longest subsequence of [H] containing
    only committed transactions — that preserves the real-time order of [H]
    and in which every transaction is legal.  Opacity is strictly stronger:
    every opaque history is strictly serializable (Figure 4 witnesses that
    the converse fails). *)

val committed_projection : History.t -> History.t
(** [Hcom]: the subsequence of events belonging to committed
    transactions. *)

val is_strictly_serializable : History.t -> bool

val serialization : History.t -> Transaction.t list option
(** A witness order of the committed transactions, if one exists. *)
