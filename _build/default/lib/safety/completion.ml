open Tm_history

(* All subsets of [xs], smallest first. *)
let subsets xs =
  let by_size =
    List.fold_left
      (fun acc x -> acc @ List.map (fun s -> x :: s) acc)
      [ [] ] xs
  in
  List.sort
    (fun a b -> Int.compare (List.length a) (List.length b))
    by_size

let candidates h =
  let ts = Transaction.of_history h in
  let undecided = List.filter Transaction.commit_pending ts in
  if List.length undecided > 16 then
    invalid_arg "Completion.candidates: too many commit-pending transactions";
  let key t = (t.Transaction.proc, t.Transaction.seq) in
  let complete chosen t =
    match t.Transaction.status with
    | Transaction.Committed | Transaction.Aborted -> t
    | Transaction.Live ->
        if Transaction.commit_pending t && List.mem (key t) chosen then
          Transaction.completed_as Transaction.Committed t
        else Transaction.completed_as Transaction.Aborted t
  in
  List.map
    (fun subset ->
      let chosen = List.map key subset in
      List.map (complete chosen) ts)
    (subsets undecided)
