(* Quickstart: simulate a TM implementation, inspect the history it
   produces, and machine-check its safety — the library's core loop in
   thirty lines.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Pick a TM from the zoo. *)
  let entry = Option.get (Tm_impl.Registry.find "tl2") in
  Fmt.pr "TM under test: %s@.  (%s)@.@." entry.Tm_impl.Registry.entry_name
    entry.Tm_impl.Registry.entry_describe;

  (* 2. Run three processes incrementing shared counters for 300 steps
     under a uniformly random scheduler. *)
  let spec =
    Tm_sim.Runner.spec ~nprocs:3 ~ntvars:2 ~steps:300 ~seed:2024
      ~sched:Tm_sim.Runner.Uniform
      ~workload:(Tm_sim.Workload.counter ~ntvars:2)
      ()
  in
  let outcome = Tm_sim.Runner.run entry spec in
  Fmt.pr "Outcome:@.%a@.@." Tm_sim.Runner.pp_summary outcome;

  (* 3. The recorded history, rendered in the paper's figure style
     (first 40 events). *)
  let h = outcome.Tm_sim.Runner.history in
  let prefix =
    Tm_history.History.of_events
      (List.filteri (fun i _ -> i < 40) (Tm_history.History.events h))
  in
  Fmt.pr "History prefix (paper notation):@.%a@."
    Tm_history.Pretty.pp_by_process prefix;

  (* 4. Machine-check safety: opacity and strict serializability. *)
  Fmt.pr "opacity: %b@." (Tm_safety.Opacity.is_opaque h);
  Fmt.pr "strict serializability: %b@.@."
    (Tm_safety.Serializability.is_strictly_serializable h);

  (* 5. And liveness, on one of the paper's infinite histories. *)
  Fmt.pr "Figure 6 (infinite history): %a@." Tm_liveness.Property.pp_verdict
    (Tm_liveness.Property.verdict Tm_history.Figures.fig6)
