(* Dining philosophers over the real multicore STM: each fork is a
   t-variable; picking up both forks is one atomic transaction, so neither
   deadlock nor partial acquisition can occur — the classic illustration of
   why composable transactions beat fine-grained locks.

   Consistently with the paper, the STM promises no per-philosopher bound
   (a philosopher can in principle starve under contention — local progress
   is impossible); the run reports the per-philosopher meal counts so the
   fairness achieved in practice is visible.

   Run with: dune exec examples/dining_philosophers.exe *)

module Stm = Tm_stm.Stm

let philosophers = 5
let meals_target = 2_000

let () =
  (* fork.(i) = None when free, Some p when held by philosopher p. *)
  let forks = Array.init philosophers (fun _ -> Stm.tvar None) in
  let meals = Array.init philosophers (fun _ -> Tm_stm.Txn_counter.make 0) in

  let take_both i =
    let left = forks.(i) and right = forks.((i + 1) mod philosophers) in
    Stm.atomically (fun () ->
        match (Stm.read left, Stm.read right) with
        | None, None ->
            Stm.write left (Some i);
            Stm.write right (Some i);
            true
        | _ -> false)
  in
  let put_both i =
    let left = forks.(i) and right = forks.((i + 1) mod philosophers) in
    Stm.atomically (fun () ->
        Stm.write left None;
        Stm.write right None)
  in

  let philosopher i () =
    let eaten = ref 0 in
    while !eaten < meals_target do
      if take_both i then begin
        (* Eat: both forks are provably ours; no other philosopher's
           transaction can have either. *)
        Tm_stm.Txn_counter.incr meals.(i);
        incr eaten;
        put_both i
      end
      else Domain.cpu_relax ()
    done
  in

  let t0 = Unix.gettimeofday () in
  List.init philosophers (fun i -> Domain.spawn (philosopher i))
  |> List.iter Domain.join;
  let dt = Unix.gettimeofday () -. t0 in

  (* Sanity: no fork is still held, every philosopher ate its quota. *)
  Array.iteri
    (fun i f ->
      match Stm.read f with
      | None -> ()
      | Some p -> Fmt.failwith "fork %d still held by %d" i p)
    forks;
  Fmt.pr "%d philosophers x %d meals in %.3fs@." philosophers meals_target dt;
  Array.iteri
    (fun i c -> Fmt.pr "  philosopher %d ate %d meals@." i (Tm_stm.Txn_counter.get c))
    meals;
  let commits, aborts = Stm.stats () in
  Fmt.pr "stm commits=%d aborts=%d@." commits aborts;
  Array.iter (fun c -> assert (Tm_stm.Txn_counter.get c = meals_target)) meals;
  Fmt.pr "OK: everyone ate, no deadlock, no stuck forks.@."
