(* Every figure of the paper, rendered and machine-checked: the finite
   histories get safety verdicts, the infinite (lasso) histories get
   process classifications and liveness verdicts.

   Run with: dune exec examples/history_explorer.exe *)

let () =
  Fmt.pr "=== Finite histories (safety verdicts) ===@.@.";
  List.iter
    (fun (name, h) ->
      Fmt.pr "--- %s ---@.%a" name Tm_history.Pretty.pp_by_process h;
      Fmt.pr "opaque: %b, strictly serializable: %b@.@."
        (Tm_safety.Opacity.is_opaque h)
        (Tm_safety.Serializability.is_strictly_serializable h))
    Tm_history.Figures.all_finite;
  Fmt.pr "=== Infinite histories (liveness verdicts) ===@.@.";
  List.iter
    (fun (name, l) ->
      Fmt.pr "--- %s ---@.%a@." name Tm_history.Pretty.pp_lasso l;
      Fmt.pr "%a@." Tm_liveness.Process_class.pp_table
        (Tm_liveness.Process_class.classify l);
      Fmt.pr "%a@.@." Tm_liveness.Property.pp_verdict
        (Tm_liveness.Property.verdict l))
    Tm_history.Figures.all_lassos
