(* Trace forensics: the full analysis pipeline on a dumped trace.

   Simulates a faulty run, serializes the history through the text codec
   (as `tmlive dump` would), re-loads it, and analyzes the reloaded trace:
   figure-style rendering, the linear-time opacity monitor, the exact
   checker, empirical window classification, and — for a deterministic
   periodic run — exact lasso detection with liveness verdicts.

   Run with: dune exec examples/trace_forensics.exe *)

let () =
  (* 1. Produce a trace: TinySTM with a parasitic process, round-robin. *)
  let entry = Option.get (Tm_impl.Registry.find "tinystm") in
  let spec =
    Tm_sim.Runner.spec ~nprocs:2 ~ntvars:1 ~steps:600 ~seed:3
      ~sched:Tm_sim.Runner.Round_robin
      ~fates:[ (1, Tm_sim.Runner.Parasitic_from 40) ]
      ()
  in
  let outcome = Tm_sim.Runner.run entry spec in

  (* 2. Round-trip through the codec, as dump/check would. *)
  let text = Tm_history.Codec.history_to_string outcome.Tm_sim.Runner.history in
  Fmt.pr "serialized trace: %d bytes, first lines:@." (String.length text);
  String.split_on_char '\n' text
  |> List.filteri (fun i _ -> i < 6)
  |> List.iter (Fmt.pr "  %s@.");
  let h =
    match Tm_history.Codec.history_of_string text with
    | Ok h -> h
    | Error m -> Fmt.failwith "re-load failed: %s" m
  in
  Fmt.pr "@.reloaded %d events; equal to the original: %b@.@."
    (Tm_history.History.length h)
    (Tm_history.History.equal h outcome.Tm_sim.Runner.history);

  (* 3. Safety. *)
  (match Tm_safety.Monitor.run h with
  | Tm_safety.Monitor.Accepted ->
      Fmt.pr "monitor: ACCEPTED — a serialization witness exists (opaque)@."
  | Tm_safety.Monitor.No_witness m -> Fmt.pr "monitor: no witness (%s)@." m);

  (* 4. Liveness, empirically: the parasite shows up in the window
     classification... *)
  Fmt.pr "@.window classification (last 100 events):@.";
  List.iter
    (Fmt.pr "  %a@." Tm_liveness.Empirical.pp_window_summary)
    (Tm_liveness.Empirical.classify_window ~window:100 h);

  (* ...and the run's periodic tail gives exact verdicts. *)
  (match Tm_liveness.Empirical.find_lasso h with
  | None -> Fmt.pr "@.no exactly periodic suffix@."
  | Some l ->
      Fmt.pr "@.periodic suffix found; exact verdicts:@.  %a@.  %a@."
        Tm_liveness.Process_class.pp_table
        (Tm_liveness.Process_class.classify l)
        Tm_liveness.Property.pp_verdict
        (Tm_liveness.Property.verdict l));

  (* 5. The headline: the parasite froze the solo runner (TinySTM's
     encounter-time locks), so p2 made no progress after step 40. *)
  Fmt.pr "@.p2 commits: %d, p2 aborts: %d — the parasite's encounter lock \
          starves it@."
    outcome.Tm_sim.Runner.commits.(2)
    outcome.Tm_sim.Runner.aborts.(2)
