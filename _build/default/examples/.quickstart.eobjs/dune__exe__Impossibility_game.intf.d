examples/impossibility_game.mli:
