examples/trace_forensics.ml: Array Fmt List Option String Tm_history Tm_impl Tm_liveness Tm_safety Tm_sim
