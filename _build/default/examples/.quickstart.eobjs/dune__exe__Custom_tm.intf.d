examples/custom_tm.mli:
