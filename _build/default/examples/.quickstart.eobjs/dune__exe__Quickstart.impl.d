examples/quickstart.ml: Fmt List Option Tm_history Tm_impl Tm_liveness Tm_safety Tm_sim
