examples/quickstart.mli:
