examples/custom_tm.ml: Array Event Fmt List Pretty Tm_adversary Tm_history Tm_impl Tm_safety Tm_sim
