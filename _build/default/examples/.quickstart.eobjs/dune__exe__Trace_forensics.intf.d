examples/trace_forensics.mli:
