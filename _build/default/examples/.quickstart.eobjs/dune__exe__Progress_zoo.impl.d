examples/progress_zoo.ml: Array Fmt List Tm_impl Tm_sim
