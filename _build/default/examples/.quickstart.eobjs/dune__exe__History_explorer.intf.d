examples/history_explorer.mli:
