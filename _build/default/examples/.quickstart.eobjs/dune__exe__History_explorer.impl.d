examples/history_explorer.ml: Fmt List Tm_history Tm_liveness Tm_safety
