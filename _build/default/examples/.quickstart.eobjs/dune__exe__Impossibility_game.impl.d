examples/impossibility_game.ml: Array Fmt List Option Tm_adversary Tm_impl
