examples/progress_zoo.mli:
