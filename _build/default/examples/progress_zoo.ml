(* The Section-3.2.3 progress taxonomy, measured: which TM lets a solo
   runner make progress under which fault?  Two processes share one
   t-variable; p1 suffers the fault, p2 keeps retrying transactions.

   Run with: dune exec examples/progress_zoo.exe *)

(* Deterministic round-robin for the fault columns (reproducible fault
   timing); a uniformly random scheduler for the healthy baseline, because
   round-robin lockstep on one hot t-variable is itself an adversarial
   schedule under which a global-progress TM may legitimately starve one
   process — that is Theorem 1, not a fault. *)
let solo ?(sched = Tm_sim.Runner.Round_robin) entry fate =
  let spec =
    Tm_sim.Runner.spec ~nprocs:2 ~ntvars:1 ~steps:4000 ~seed:1 ~sched
      ~fates:[ (1, fate) ]
      ()
  in
  let o = Tm_sim.Runner.run entry spec in
  o.Tm_sim.Runner.commits.(2) >= 10

let mark b = if b then "  yes   " else "  NO    "

let () =
  Fmt.pr
    "Solo progress under faults (p1 faulty, does the solo runner p2 make@.\
     progress?).  Reproduces the classification of Section 3.2.3:@.\
     lock-based encounter-time TMs need crash-free AND parasitic-free;@.\
     deferred-update TL2 needs crash-free; obstruction-free DSTM needs@.\
     parasitic-free (or an aggressive manager that converts parasites into@.\
     aborted processes); lock-free OSTM and the paper's Fgp survive all.@.@.";
  Fmt.pr "%-18s %-8s %-8s %-8s %-8s@." "TM" "healthy" "crash" "mid-commit"
    "parasite";
  List.iter
    (fun entry ->
      let healthy = solo ~sched:Tm_sim.Runner.Uniform entry Tm_sim.Runner.Healthy in
      let crash = solo entry (Tm_sim.Runner.Crash_after_write 1) in
      (* The in-commit crash point is TM-specific: multi-poll commit
         procedures (tl2, ostm, norec) are interrupted two polls deep;
         one-poll commits can only be interrupted right after the tryC
         invocation. *)
      let depth =
        match entry.Tm_impl.Registry.entry_name with
        | "tl2" | "ostm" | "norec" -> 2
        | _ -> 0
      in
      let mid = solo entry (Tm_sim.Runner.Crash_mid_commit depth) in
      let para = solo entry (Tm_sim.Runner.Parasitic_from 10) in
      Fmt.pr "%-18s %s %s %s %s@." entry.Tm_impl.Registry.entry_name
        (mark healthy) (mark crash) (mark mid) (mark para))
    Tm_impl.Registry.all;
  Fmt.pr
    "@.Random-crash vulnerability: fraction of 40 random crash points that@.\
     leave the solo runner stuck.@.@.";
  List.iter
    (fun entry ->
      let stalls = ref 0 in
      for seed = 1 to 40 do
        let crash_step = 20 + (seed * 13 mod 200) in
        let spec =
          Tm_sim.Runner.spec ~nprocs:2 ~ntvars:1 ~steps:3000 ~seed
            ~sched:Tm_sim.Runner.Round_robin
            ~fates:[ (1, Tm_sim.Runner.Crash_at crash_step) ]
            ()
        in
        let o = Tm_sim.Runner.run entry spec in
        if o.Tm_sim.Runner.commits.(2) < 10 then incr stalls
      done;
      Fmt.pr "%-18s %2d/40 crash points stall the runner@."
        entry.Tm_impl.Registry.entry_name !stalls)
    Tm_impl.Registry.all
