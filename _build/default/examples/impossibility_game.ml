(* The Theorem-1 impossibility, played out: run the paper's adversary
   (Algorithms 1 and 2) against every TM in the zoo and watch process p1
   starve — or the TM block — exactly as the proof predicts.

   Run with: dune exec examples/impossibility_game.exe *)

let play alg alg_name =
  Fmt.pr "== %s ==@." alg_name;
  Fmt.pr "%-18s %-8s %-10s %-10s %-10s %s@." "TM" "rounds" "p1-commit"
    "p1-abort" "p2-commit" "verdict";
  List.iter
    (fun entry ->
      let r = Tm_adversary.Adversary.run ~rounds:30 entry alg in
      let verdict =
        if r.Tm_adversary.Adversary.terminated then
          "TERMINATED (opacity violated!)"
        else if r.Tm_adversary.Adversary.blocked then
          "blocked (escapes by withholding responses)"
        else "p1 starves: local progress violated"
      in
      Fmt.pr "%-18s %-8d %-10d %-10d %-10d %s@."
        entry.Tm_impl.Registry.entry_name
        r.Tm_adversary.Adversary.rounds_completed
        r.Tm_adversary.Adversary.victim_commits
        r.Tm_adversary.Adversary.victim_aborts
        r.Tm_adversary.Adversary.winner_commits verdict)
    Tm_impl.Registry.all;
  Fmt.pr "@."

let () =
  Fmt.pr
    "Theorem 1 (PODC 2012): no TM ensures both opacity and local progress@.\
     in a fault-prone system.  The adversary below wins against every TM:@.\
     either p1 never commits while p2 commits forever, or the TM blocks.@.@.";
  play Tm_adversary.Adversary.Algorithm_1 "Algorithm 1 (parasitic-free case)";
  play Tm_adversary.Adversary.Algorithm_2 "Algorithm 2 (crash-free case)";

  (* The generalization (Lemma 1): n-1 victims starve at once. *)
  Fmt.pr "== Lemma 1: n-process generalization (vs fgp) ==@.";
  let entry = Option.get (Tm_impl.Registry.find "fgp") in
  List.iter
    (fun n ->
      let r = Tm_adversary.Adversary.General.run ~rounds:15 ~nprocs:n entry in
      let victim_commits =
        Array.to_list r.Tm_adversary.Adversary.General.commits
        |> List.filteri (fun i _ -> i >= 1 && i < n)
        |> List.fold_left ( + ) 0
      in
      Fmt.pr
        "n=%d: %d rounds, winner committed %d, all %d victims combined \
         committed %d@."
        n
        r.Tm_adversary.Adversary.General.rounds_completed
        r.Tm_adversary.Adversary.General.commits.(n)
        (n - 1) victim_commits)
    [ 2; 3; 5; 8 ]
