(* A real multicore STM application: concurrent bank transfers over OCaml 5
   domains, with an auditor continuously checking the conservation-of-money
   invariant from a consistent transactional snapshot.

   Run with: dune exec examples/bank_multicore.exe *)

module Bank = Tm_stm.Txn_bank
module Stm = Tm_stm.Stm

let accounts = 16
let initial = 1000
let workers = 4
let transfers_per_worker = 20_000

let () =
  let bank = Bank.make ~accounts ~initial in
  let expected_total = accounts * initial in
  let audit_failures = Atomic.make 0 in
  let audits = Atomic.make 0 in
  let stop = Atomic.make false in

  let worker d () =
    let st = ref (d + 42) in
    let rand bound =
      st := (!st * 1103515245) + 12345;
      abs !st mod bound
    in
    for _ = 1 to transfers_per_worker do
      let a = rand accounts in
      let b = (a + 1 + rand (accounts - 1)) mod accounts in
      ignore (Bank.transfer bank ~from_:a ~to_:b ~amount:(1 + rand 20))
    done
  in
  let auditor () =
    while not (Atomic.get stop) do
      Atomic.incr audits;
      if Bank.total bank <> expected_total then Atomic.incr audit_failures
    done
  in

  let t0 = Unix.gettimeofday () in
  let auditor_d = Domain.spawn auditor in
  let workers_d = List.init workers (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join workers_d;
  Atomic.set stop true;
  Domain.join auditor_d;
  let dt = Unix.gettimeofday () -. t0 in

  let commits, aborts = Stm.stats () in
  Fmt.pr "bank: %d accounts x %d, %d workers x %d transfers@." accounts
    initial workers transfers_per_worker;
  Fmt.pr "elapsed: %.3fs (%.0f transfers/s)@." dt
    (float_of_int (workers * transfers_per_worker) /. dt);
  Fmt.pr "stm commits: %d, aborts: %d (abort rate %.1f%%)@." commits aborts
    (100. *. float_of_int aborts /. float_of_int (max 1 (commits + aborts)));
  Fmt.pr "audits run concurrently: %d, invariant violations: %d@."
    (Atomic.get audits) (Atomic.get audit_failures);
  Fmt.pr "final total: %d (expected %d)@." (Bank.total bank) expected_total;
  assert (Atomic.get audit_failures = 0);
  assert (Bank.total bank = expected_total);
  Fmt.pr "OK: money conserved under full concurrency.@."
